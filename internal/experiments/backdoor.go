package experiments

import (
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
)

// BackdoorSize reproduces the backdoor-set-size runtime analysis of Section
// 5.5: the same German-Syn (20k) Count query evaluated with the minimal
// backdoor set ({Age, Sex}, ModeFull) versus conditioning on all attributes
// (ModeNB). The paper measures 7.2s vs 22.45s — a ~3x slowdown shape.
func BackdoorSize(cfg Config) error {
	cfg = cfg.defaults()
	g := dataset.GermanSyn(cfg.n(20000), cfg.Seed)
	q := mustParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)

	full, tFull, err := timeEval(g.DB, g.Model, q, engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	nb, tNB, err := timeEval(g.DB, g.Model, q, engine.Options{Mode: engine.ModeNB, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	cfg.printf("Backdoor-set size vs runtime (German-Syn 20k)\n")
	cfg.printf("  backdoor %v (%d attrs): %s\n", full.Backdoor, len(full.Backdoor), tFull.Round(time.Millisecond))
	cfg.printf("  backdoor %v (%d attrs): %s\n", nb.Backdoor, len(nb.Backdoor), tNB.Round(time.Millisecond))
	return nil
}

// HowToQuality reproduces the how-to quality study of Section 5.4: the
// German-Syn how-to over {Status, Savings, Housing, CreditAmount} compared
// with the ground-truth Opt-HowTo, and the Student-Syn budget-one how-to
// that must pick Attendance.
func HowToQuality(cfg Config) error {
	cfg = cfg.defaults()

	g := dataset.GermanSyn(cfg.n(20000), cfg.Seed)
	q := mustParseHowTo(fig12HowToQuery)
	res, err := howto.Evaluate(g.DB, g.Model, q, howto.Options{Engine: engine.Options{Seed: cfg.Seed}})
	if err != nil {
		return err
	}
	gtEval := groundTruthCreditEval(g)
	cands, err := howto.Candidates(g.DB, q, howto.Options{})
	if err != nil {
		return err
	}
	opt, err := howto.BruteForceWith(q, cands, gtEval)
	if err != nil {
		return err
	}
	achieved, err := gtEval(res.Updates())
	if err != nil {
		return err
	}
	cfg.printf("How-to quality (German-Syn 20k)\n")
	cfg.printf("  HypeR:      %s\n", res)
	cfg.printf("  Opt-HowTo:  %s\n", opt)
	cfg.printf("  ground-truth value of HypeR's updates: %.0f (%.1f%% of optimum)\n",
		achieved, 100*achieved/opt.Objective)

	// Student-Syn: budget of one attribute; attendance must win because its
	// total causal effect on the grade (direct plus through discussions,
	// announcements and assignments) dominates.
	st := dataset.StudentSyn(cfg.n(10000), 5, cfg.Seed+1)
	src := `
USE (SELECT S.SID, S.Age, S.Gender, S.Country, S.Attendance,
            AVG(P.Assignment) AS Assignment, AVG(P.Discussion) AS Discussion,
            AVG(P.Grade) AS Grade
     FROM Student AS S, Participation AS P
     WHERE S.SID = P.SID
     GROUP BY S.SID, S.Age, S.Gender, S.Country, S.Attendance)
HOWTOUPDATE Attendance
LIMIT UPDATES <= 1
TOMAXIMIZE AVG(POST(Grade))`
	stQ, err := hyperql.ParseHowTo(src)
	if err != nil {
		return err
	}
	stRes, err := howto.Evaluate(st.DB, st.Model, stQ, howto.Options{Engine: engine.Options{Seed: cfg.Seed}})
	if err != nil {
		return err
	}
	cfg.printf("\nHow-to quality (Student-Syn, budget 1): %s\n", stRes)
	truth := st.CounterfactualAvgGrade(dataset.StudentAttendance, func(float64) float64 { return 9 })
	cfg.printf("  ground truth average grade at max attendance: %.2f (observed %.2f)\n", truth, st.AvgGrade())
	return nil
}
