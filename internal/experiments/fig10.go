package experiments

import (
	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
)

// studentViewFor returns the relevant-view USE clause for a Student-Syn
// what-if query updating attr: attendance updates use the per-student
// grouped view; participation-attribute updates use the per-participation
// joined view.
func studentQuery(attr string, value string) string {
	if attr == dataset.StudentAttendance {
		return `
USE (SELECT S.SID, S.Age, S.Gender, S.Country, S.Attendance,
            AVG(P.Grade) AS Grade
     FROM Student AS S, Participation AS P
     WHERE S.SID = P.SID
     GROUP BY S.SID, S.Age, S.Gender, S.Country, S.Attendance)
UPDATE(Attendance) = ` + value + `
OUTPUT AVG(POST(Grade))`
	}
	return `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
UPDATE(` + attr + `) = ` + value + `
OUTPUT AVG(POST(Grade))`
}

// Fig10 reproduces Figure 10: what-if query output per updated attribute for
// German-Syn (1M) and Student-Syn, comparing the ground truth (structural
// equations) with HypeR, HypeR-sampled, HypeR-NB and Indep. The paper's
// shape: all HypeR variants within ~5% of ground truth; Indep biased by
// correlation (most visibly when updating Status).
func Fig10(cfg Config) error {
	cfg = cfg.defaults()

	// (a) German-Syn: fraction of good credit when each attribute is forced
	// to its maximum value.
	g := dataset.GermanSyn(cfg.n(1000000), cfg.Seed)
	n := float64(g.Rel().Len())
	cfg.printf("Figure 10a: German-Syn (1M) — fraction good credit after update to max\n")
	cfg.printf("%-14s %8s %8s %10s %10s %8s\n", "Attribute", "Truth", "HypeR", "H-sampled", "HypeR-NB", "Indep")
	gAttrs := []struct {
		name string
		max  float64
	}{
		{"Status", 3}, {"Savings", 3}, {"Housing", 2}, {"CreditAmount", 3},
	}
	for _, a := range gAttrs {
		post := g.World.Counterfactual(prcm.Intervention{Attr: a.name, Fn: func(float64) float64 { return a.max }})
		truth := fracGood(post, "Credit", 1)
		q := mustParseWhatIf("USE German UPDATE(" + a.name + ") = " + fmtIntPart(int(a.max)) + " OUTPUT COUNT(Credit = 1)")
		vals := map[string]float64{}
		for _, m := range []struct {
			label string
			opts  engine.Options
		}{
			{"hyper", engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed}},
			{"sampled", engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed, SampleSize: 100000}},
			{"nb", engine.Options{Mode: engine.ModeNB, Seed: cfg.Seed}},
			{"indep", engine.Options{Mode: engine.ModeIndep, Seed: cfg.Seed}},
		} {
			res, _, err := timeEval(g.DB, g.Model, q, m.opts)
			if err != nil {
				return err
			}
			vals[m.label] = res.Value / n
		}
		cfg.printf("%-14s %8.3f %8.3f %10.3f %10.3f %8.3f\n",
			a.name, truth, vals["hyper"], vals["sampled"], vals["nb"], vals["indep"])
	}

	// (b) Student-Syn: average grade when each attribute is forced to its
	// maximum value.
	st := dataset.StudentSyn(cfg.n(10000), 5, cfg.Seed+1)
	cfg.printf("\nFigure 10b: Student-Syn — average grade after update to max\n")
	cfg.printf("%-14s %8s %8s %10s %8s\n", "Attribute", "Truth", "HypeR", "HypeR-NB", "Indep")
	sAttrs := []struct {
		name string
		max  float64
	}{
		{dataset.StudentAssignment, 100}, {dataset.StudentAttendance, 9},
		{dataset.StudentAnnouncements, 10}, {dataset.StudentHandRaised, 10},
		{dataset.StudentDiscussion, 10},
	}
	for _, a := range sAttrs {
		truth := st.CounterfactualAvgGrade(a.name, func(float64) float64 { return a.max })
		src := studentQuery(a.name, fmtIntPart(int(a.max)))
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			return err
		}
		vals := map[string]float64{}
		for _, m := range []struct {
			label string
			opts  engine.Options
		}{
			{"hyper", engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed}},
			{"nb", engine.Options{Mode: engine.ModeNB, Seed: cfg.Seed}},
			{"indep", engine.Options{Mode: engine.ModeIndep, Seed: cfg.Seed}},
		} {
			res, _, err := timeEval(st.DB, st.Model, q, m.opts)
			if err != nil {
				return err
			}
			vals[m.label] = res.Value
		}
		cfg.printf("%-14s %8.2f %8.2f %10.2f %8.2f\n",
			a.name, truth, vals["hyper"], vals["nb"], vals["indep"])
	}
	return nil
}
