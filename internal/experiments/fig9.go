package experiments

import (
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
	"hyper/internal/relation"
)

const fig9Query = `
USE German
HOWTOUPDATE CreditAmount, Duration, InstallmentRate
LIMIT 0 <= POST(CreditAmount) <= 6000 AND 6 <= POST(Duration) <= 48 AND 1 <= POST(InstallmentRate) <= 4
TOMAXIMIZE COUNT(Credit = 1)`

// Fig9 reproduces Figure 9: how-to solution quality and running time on
// German-Syn (20k) with continuous attributes, as a function of the number
// of discretization buckets. Quality is the ratio between the ground-truth
// objective achieved by each method's chosen updates and the ground-truth
// optimum (computed on a fine grid). The paper's shape: quality within 10%
// of optimal from 4 buckets up; Opt-discrete's runtime grows exponentially
// with buckets while HypeR's IP grows only linearly.
func Fig9(cfg Config) error {
	cfg = cfg.defaults()
	g := dataset.GermanSynContinuous(cfg.n(20000), cfg.Seed)
	q := mustParseHowTo(fig9Query)

	gtEval := groundTruthCreditEval(g)
	// Ground-truth optimum over a fine grid (stands in for Opt-HowTo on the
	// continuous domain).
	fineCands, err := howto.Candidates(g.DB, q, howto.Options{Buckets: 16})
	if err != nil {
		return err
	}
	opt, err := howto.BruteForceWith(q, fineCands, gtEval)
	if err != nil {
		return err
	}

	cfg.printf("Figure 9: how-to quality and runtime vs discretization buckets (GT optimum = %.0f)\n", opt.Objective)
	cfg.printf("%-8s %12s %14s %14s %14s %16s\n", "Buckets", "HypeR qual", "Opt-disc qual", "GT-disc qual", "HypeR time", "Opt-disc time")
	for _, buckets := range []int{1, 2, 4, 6, 8, 10} {
		// GT-disc: the best achievable on this bucket grid, by exhaustive
		// search with the exact structural-equation objective. It isolates
		// pure discretization loss from estimation error.
		bCands, err := howto.Candidates(g.DB, q, howto.Options{Buckets: buckets})
		if err != nil {
			return err
		}
		gtDisc, err := howto.BruteForceWith(q, bCands, gtEval)
		if err != nil {
			return err
		}
		hOpts := howto.Options{Engine: engine.Options{Seed: cfg.Seed}, Buckets: buckets}
		start := time.Now()
		hRes, err := howto.Evaluate(g.DB, g.Model, q, hOpts)
		if err != nil {
			return err
		}
		hTime := time.Since(start)
		hVal, err := gtEval(hRes.Updates())
		if err != nil {
			return err
		}

		start = time.Now()
		dRes, err := howto.BruteForce(g.DB, g.Model, q, hOpts)
		if err != nil {
			return err
		}
		dTime := time.Since(start)
		dVal, err := gtEval(dRes.Updates())
		if err != nil {
			return err
		}

		cfg.printf("%-8d %12.3f %14.3f %14.3f %14s %16s\n", buckets,
			hVal/opt.Objective, dVal/opt.Objective, gtDisc.Objective/opt.Objective,
			hTime.Round(time.Millisecond), dTime.Round(time.Millisecond))
	}
	return nil
}

// groundTruthCreditEval returns an evaluator computing the exact
// post-update count of good-credit rows via the structural equations.
func groundTruthCreditEval(g *dataset.Single) func([]hyperql.UpdateSpec) (float64, error) {
	return func(updates []hyperql.UpdateSpec) (float64, error) {
		var ivs []prcm.Intervention
		for _, u := range updates {
			u := u
			ivs = append(ivs, prcm.Intervention{Attr: u.Attr, Fn: func(pre float64) float64 {
				return u.Apply(relation.Float(pre)).AsFloat()
			}})
		}
		post := g.World.Counterfactual(ivs...)
		return fracGood(post, "Credit", 1) * float64(post.Len()), nil
	}
}
