package ml

import (
	"testing"

	"hyper/internal/shard"
)

// shardTestData builds a discrete 3-feature training set with integer
// labels: integer sums are exact under any regrouping, so per-shard fits
// merged in plan order must reproduce the whole-range fit bit for bit.
func shardTestData(n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{float64(i % 4), float64(i % 3), float64((i / 3) % 5)}
		y[i] = float64((i*i + 7) % 2)
	}
	return X, y
}

func TestFitFreqFrameShardedMatchesWholeFit(t *testing.T) {
	const n = 1000
	X, y := shardTestData(n)
	fr := FrameFromRows(X)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	whole := FitFreqFrame(fr, rows, y, 1)

	probes := append([][]float64{
		{99, 99, 99}, // unseen everywhere: global-mean fallback
		{0, 99, 99},  // partial: backoff path
		{3, 2, 4},
	}, X[:50]...)

	for _, k := range []int{1, 2, 3, 7, n + 5} { // n+5: empty trailing shards
		for _, workers := range []int{1, 4} {
			sharded := FitFreqFrameSharded(fr, rows, y, 1, shard.Fixed(n, k), workers)
			if got, want := sharded.Support(), whole.Support(); got != want {
				t.Fatalf("k=%d workers=%d: support %d, want %d", k, workers, got, want)
			}
			for _, x := range probes {
				if got, want := sharded.Predict(x), whole.Predict(x); got != want {
					t.Errorf("k=%d workers=%d: Predict(%v) = %v, want %v", k, workers, x, got, want)
				}
			}
			if got, want := sharded.SupportOf(X[0]), whole.SupportOf(X[0]); got != want {
				t.Errorf("k=%d workers=%d: SupportOf = %d, want %d", k, workers, got, want)
			}
		}
	}
}

// TestFitFreqFrameShardedDeterministicFloatSums pins the plan-order merge
// with non-integer labels: different plans may legitimately regroup sums,
// but a fixed plan must produce identical bits for every worker count.
func TestFitFreqFrameShardedDeterministicFloatSums(t *testing.T) {
	const n = 999
	X, _ := shardTestData(n)
	y := make([]float64, n)
	for i := range y {
		y[i] = 0.1 * float64(i%17) / 3.0
	}
	fr := FrameFromRows(X)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	plan := shard.Fixed(n, 7)
	base := FitFreqFrameSharded(fr, rows, y, 1, plan, 1)
	for _, workers := range []int{2, 3, 8} {
		got := FitFreqFrameSharded(fr, rows, y, 1, plan, workers)
		for _, x := range X[:100] {
			if got.Predict(x) != base.Predict(x) {
				t.Fatalf("workers=%d: Predict(%v) = %v, want %v", workers, x, got.Predict(x), base.Predict(x))
			}
		}
	}
}

func TestNewSupportSetShardedMatchesWhole(t *testing.T) {
	const n = 500
	X, _ := shardTestData(n)
	fr := FrameFromRows(X)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	whole := NewSupportSet(fr, rows)
	for _, k := range []int{1, 3, n + 2} {
		sharded := NewSupportSetSharded(fr, rows, shard.Fixed(n, k), 4)
		if sharded.Len() != whole.Len() {
			t.Fatalf("k=%d: %d distinct combos, want %d", k, sharded.Len(), whole.Len())
		}
		for _, x := range X[:80] {
			if !sharded.Has(x) {
				t.Errorf("k=%d: missing support for %v", k, x)
			}
		}
		if sharded.Has([]float64{99, 99, 99}) {
			t.Errorf("k=%d: phantom support", k)
		}
	}
}

// TestShardMergeableCapability pins the capability flag the engine keys its
// per-shard-fit decision on.
func TestShardMergeableCapability(t *testing.T) {
	if !ShardMergeable("freq") {
		t.Error("freq must be shard-mergeable")
	}
	for _, kind := range []string{"forest", "linear", "boosted", ""} {
		if ShardMergeable(kind) {
			t.Errorf("%q must not be shard-mergeable", kind)
		}
	}
}
