package ml

import (
	"math"
	"sort"

	"hyper/internal/stats"
)

// TreeParams configures CART regression-tree induction.
type TreeParams struct {
	MaxDepth      int // maximum tree depth (root is depth 0)
	MinLeaf       int // minimum samples per leaf
	MaxFeatures   int // features tried per split; 0 means all
	MaxThresholds int // candidate thresholds per feature; 0 means 32
}

// DefaultTreeParams mirrors common regression-tree defaults.
func DefaultTreeParams() TreeParams {
	return TreeParams{MaxDepth: 12, MinLeaf: 5, MaxThresholds: 32}
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

// Tree is a fitted CART regression tree (variance-reduction splits).
type Tree struct {
	root *treeNode
	dim  int
}

// frameView adapts a frame to a training sample: position p reads frame row
// sel[p] (identity when sel is nil). Feature access goes through the frame's
// contiguous column buffers, which is the access pattern tree induction
// wants (bestSplit scans one feature across all rows).
type frameView struct {
	fr  *Frame
	sel []int // position -> frame row; nil = identity
}

func (v frameView) at(pos, c int) float64 {
	if v.sel != nil {
		pos = v.sel[pos]
	}
	return v.fr.data[c*v.fr.rows+pos]
}

// col returns feature c's contiguous column (indexed by frame row, not
// position; callers holding positions must map through rowOf).
func (v frameView) col(c int) []float64 {
	return v.fr.data[c*v.fr.rows : (c+1)*v.fr.rows]
}

func (v frameView) rowOf(pos int) int {
	if v.sel == nil {
		return pos
	}
	return v.sel[pos]
}

// FitTree trains a regression tree on (X, y). rows selects the training rows
// (with repetition allowed, enabling bootstrap); pass nil for all rows. rng
// drives feature subsampling and may be nil when MaxFeatures is 0.
func FitTree(X [][]float64, y []float64, rows []int, p TreeParams, rng *stats.RNG) *Tree {
	return FitTreeFrame(FrameFromRows(X), nil, y, rows, p, rng)
}

// FitTreeFrame trains a regression tree over frame rows. sel maps training
// positions to frame rows (nil for identity); y is parallel to positions;
// rows selects positions (with repetition, enabling bootstrap) and may be
// nil for all.
func FitTreeFrame(fr *Frame, sel []int, y []float64, rows []int, p TreeParams, rng *stats.RNG) *Tree {
	if rows == nil {
		rows = make([]int, len(y))
		for i := range rows {
			rows[i] = i
		}
	}
	if p.MaxThresholds <= 0 {
		p.MaxThresholds = 32
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 1
	}
	t := &Tree{dim: fr.dim}
	b := &treeBuilder{X: frameView{fr: fr, sel: sel}, y: y, p: p, rng: rng, dim: fr.dim}
	t.root = b.build(rows, 0)
	return t
}

type treeBuilder struct {
	X   frameView
	y   []float64
	p   TreeParams
	rng *stats.RNG
	dim int
}

func (b *treeBuilder) build(rows []int, depth int) *treeNode {
	mean, sse := meanSSE(b.y, rows)
	if len(rows) < 2*b.p.MinLeaf || (b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) || sse <= 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}
	feat, thr, gain := b.bestSplit(rows, sse)
	if gain <= 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}
	var left, right []int
	for _, r := range rows {
		if b.X.at(r, feat) <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.p.MinLeaf || len(right) < b.p.MinLeaf {
		return &treeNode{leaf: true, value: mean}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      b.build(left, depth+1),
		right:     b.build(right, depth+1),
	}
}

// bestSplit scans candidate features/thresholds and returns the split with
// the largest SSE reduction.
func (b *treeBuilder) bestSplit(rows []int, parentSSE float64) (feat int, thr, gain float64) {
	feats := b.candidateFeatures()
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	vals := make([]float64, 0, len(rows))
	for _, f := range feats {
		col := b.X.col(f)
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, col[b.X.rowOf(r)])
		}
		thresholds := candidateThresholds(vals, b.p.MaxThresholds)
		for _, t := range thresholds {
			g := b.splitGain(rows, f, t, parentSSE)
			if g > bestGain {
				bestGain, bestFeat, bestThr = g, f, t
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

func (b *treeBuilder) candidateFeatures() []int {
	if b.p.MaxFeatures <= 0 || b.p.MaxFeatures >= b.dim || b.rng == nil {
		all := make([]int, b.dim)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.SampleIndexes(b.dim, b.p.MaxFeatures)
}

// splitGain computes the SSE reduction of splitting rows on X[f] <= t using
// a single streaming pass.
func (b *treeBuilder) splitGain(rows []int, f int, t, parentSSE float64) float64 {
	col := b.X.col(f)
	var nL, nR int
	var meanL, meanR, m2L, m2R float64
	for _, r := range rows {
		v := b.y[r]
		if col[b.X.rowOf(r)] <= t {
			nL++
			d := v - meanL
			meanL += d / float64(nL)
			m2L += d * (v - meanL)
		} else {
			nR++
			d := v - meanR
			meanR += d / float64(nR)
			m2R += d * (v - meanR)
		}
	}
	if nL < b.p.MinLeaf || nR < b.p.MinLeaf {
		return 0
	}
	return parentSSE - m2L - m2R
}

// candidateThresholds picks up to maxT midpoints between distinct sorted
// values (all midpoints when few distinct values, quantile-spaced otherwise).
func candidateThresholds(vals []float64, maxT int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	distinct := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != distinct[len(distinct)-1] {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) < 2 {
		return nil
	}
	mids := make([]float64, 0, len(distinct)-1)
	for i := 0; i+1 < len(distinct); i++ {
		mids = append(mids, (distinct[i]+distinct[i+1])/2)
	}
	if len(mids) <= maxT {
		return mids
	}
	out := make([]float64, 0, maxT)
	for i := 0; i < maxT; i++ {
		out = append(out, mids[i*len(mids)/maxT])
	}
	return out
}

func meanSSE(y []float64, rows []int) (mean, sse float64) {
	var s stats.Summary
	for _, r := range rows {
		s.Add(y[r])
	}
	if s.N() < 2 {
		return s.Mean(), 0
	}
	return s.Mean(), s.Var() * float64(s.N()-1)
}

// Predict returns the tree's prediction for x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the fitted tree.
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return leaves(t.root) }

func leaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}
