package ml

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
)

// Wire encoding for the shard-mergeable estimators. A FreqEstimator (and a
// SupportSet) fitted over one shard of the canonical fit plan is a map of
// cells keyed by interned feature codes; because interning is deterministic
// (codes are dense, assigned in row order per column), two processes that
// built the same frame over the same rows agree on every key. That makes a
// per-shard partial index a portable message: a worker fits its shard,
// encodes the cells, and a coordinator that decodes the parts against its
// own frame and merges them in plan order reconstructs the whole-range fit
// bit for bit — the same contract FitFreqFrameSharded provides in-process.
//
// Every wire message carries the frame fingerprint (dim, per-column
// cardinalities, packed/wide key mode) so a part fitted against a different
// frame — different data, different view, different feature columns — is
// rejected at decode time instead of merging garbage.

// WireCells is one cell map in wire form: parallel arrays sorted by key so
// the encoding of a given index is canonical. Packed keys are decimal
// uint64 strings (JSON numbers lose precision past 2^53); wide keys are
// base64 of the little-endian code bytes.
type WireCells struct {
	Keys []string  `json:"k,omitempty"`
	Sum  []float64 `json:"s,omitempty"`
	N    []int     `json:"n,omitempty"`
}

// FreqWire is a FreqEstimator partial index in wire form.
type FreqWire struct {
	Dim       int       `json:"dim"`
	Card      []uint32  `json:"card"`
	Packed    bool      `json:"packed"`
	KeepFirst int       `json:"keep_first"`
	GlobalSum float64   `json:"global_sum"`
	GlobalN   int       `json:"global_n"`
	Exact     WireCells `json:"exact"`
	// Backoff has one entry per feature column; columns below KeepFirst are
	// never wildcarded and stay empty.
	Backoff   []WireCells `json:"backoff"`
	FirstOnly WireCells   `json:"first_only"`
}

// SupportWire is a SupportSet partial index in wire form.
type SupportWire struct {
	Dim    int      `json:"dim"`
	Card   []uint32 `json:"card"`
	Packed bool     `json:"packed"`
	Keys   []string `json:"keys,omitempty"`
}

func encodeCells[K comparable](m map[K]*cell, enc func(K) string) WireCells {
	if len(m) == 0 {
		return WireCells{}
	}
	keys := make([]string, 0, len(m))
	byKey := make(map[string]*cell, len(m))
	for k, c := range m {
		s := enc(k)
		keys = append(keys, s)
		byKey[s] = c
	}
	sort.Strings(keys)
	w := WireCells{Keys: keys, Sum: make([]float64, len(keys)), N: make([]int, len(keys))}
	for i, k := range keys {
		w.Sum[i] = byKey[k].sum
		w.N[i] = byKey[k].n
	}
	return w
}

func decodeCells[K comparable](w WireCells, dec func(string) (K, error)) (map[K]*cell, error) {
	if len(w.Keys) != len(w.Sum) || len(w.Keys) != len(w.N) {
		return nil, fmt.Errorf("ml: wire cells arrays disagree (%d keys, %d sums, %d counts)",
			len(w.Keys), len(w.Sum), len(w.N))
	}
	m := make(map[K]*cell, len(w.Keys))
	for i, s := range w.Keys {
		k, err := dec(s)
		if err != nil {
			return nil, err
		}
		if _, dup := m[k]; dup {
			return nil, fmt.Errorf("ml: wire cells have duplicate key %q", s)
		}
		m[k] = &cell{sum: w.Sum[i], n: w.N[i]}
	}
	return m, nil
}

func packedKeyString(k uint64) string { return strconv.FormatUint(k, 10) }

func parsePackedKey(s string) (uint64, error) {
	k, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ml: bad packed wire key %q: %v", s, err)
	}
	return k, nil
}

func wideKeyString(k string) string { return base64.StdEncoding.EncodeToString([]byte(k)) }

func parseWideKey(s string) (string, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return "", fmt.Errorf("ml: bad wide wire key %q: %v", s, err)
	}
	return string(raw), nil
}

// EncodeFreqWire renders a fitted frequency estimator as a wire message.
func EncodeFreqWire(f *FreqEstimator) *FreqWire {
	w := &FreqWire{
		Dim:       f.dim,
		Card:      append([]uint32(nil), f.card...),
		Packed:    f.packed(),
		KeepFirst: f.keepFirst,
		GlobalSum: f.global.sum,
		GlobalN:   f.global.n,
		Backoff:   make([]WireCells, f.dim),
	}
	if f.packed() {
		w.Exact = encodeCells(f.exact, packedKeyString)
		for i := f.keepFirst; i < f.dim; i++ {
			w.Backoff[i] = encodeCells(f.backoff[i], packedKeyString)
		}
		w.FirstOnly = encodeCells(f.firstOnly, packedKeyString)
		return w
	}
	w.Exact = encodeCells(f.exactW, wideKeyString)
	for i := f.keepFirst; i < f.dim; i++ {
		w.Backoff[i] = encodeCells(f.backoffW[i], wideKeyString)
	}
	w.FirstOnly = encodeCells(f.firstOnlyW, wideKeyString)
	return w
}

// checkFingerprint verifies a wire part was fitted against the same frame
// shape the decoder holds.
func checkFingerprint(k keyer, dim int, card []uint32, packed bool) error {
	if dim != k.dim {
		return fmt.Errorf("ml: wire part dim %d != frame dim %d", dim, k.dim)
	}
	if len(card) != len(k.card) {
		return fmt.Errorf("ml: wire part has %d cardinalities, frame has %d", len(card), len(k.card))
	}
	for i, c := range card {
		if c != k.card[i] {
			return fmt.Errorf("ml: wire part cardinality[%d]=%d != frame %d (different data?)", i, c, k.card[i])
		}
	}
	if packed != k.packed() {
		return fmt.Errorf("ml: wire part key mode (packed=%v) != frame key mode (packed=%v)", packed, k.packed())
	}
	return nil
}

// DecodeFreqWire rebuilds a frequency-estimator partial against the local
// frame, verifying the fingerprint so cells from a different frame cannot be
// merged silently.
func DecodeFreqWire(fr *Frame, w *FreqWire) (*FreqEstimator, error) {
	fr.Intern()
	k := newKeyer(fr)
	if err := checkFingerprint(k, w.Dim, w.Card, w.Packed); err != nil {
		return nil, err
	}
	if w.KeepFirst < 0 || w.KeepFirst > w.Dim {
		return nil, fmt.Errorf("ml: wire part keep_first %d out of range [0, %d]", w.KeepFirst, w.Dim)
	}
	if len(w.Backoff) != w.Dim {
		return nil, fmt.Errorf("ml: wire part has %d backoff maps, want %d", len(w.Backoff), w.Dim)
	}
	f := &FreqEstimator{keyer: k, keepFirst: w.KeepFirst}
	f.global = cell{sum: w.GlobalSum, n: w.GlobalN}
	var err error
	if f.packed() {
		if f.exact, err = decodeCells(w.Exact, parsePackedKey); err != nil {
			return nil, err
		}
		f.backoff = make([]map[uint64]*cell, f.dim)
		for i := f.keepFirst; i < f.dim; i++ {
			if f.backoff[i], err = decodeCells(w.Backoff[i], parsePackedKey); err != nil {
				return nil, err
			}
		}
		if f.firstOnly, err = decodeCells(w.FirstOnly, parsePackedKey); err != nil {
			return nil, err
		}
		return f, nil
	}
	if f.exactW, err = decodeCells(w.Exact, parseWideKey); err != nil {
		return nil, err
	}
	f.backoffW = make([]map[string]*cell, f.dim)
	for i := f.keepFirst; i < f.dim; i++ {
		if f.backoffW[i], err = decodeCells(w.Backoff[i], parseWideKey); err != nil {
			return nil, err
		}
	}
	if f.firstOnlyW, err = decodeCells(w.FirstOnly, parseWideKey); err != nil {
		return nil, err
	}
	return f, nil
}

// MergeFreqWires decodes the per-shard wire parts against the local frame
// and folds them in the given (plan) order, reconstructing exactly the
// estimator FitFreqFrameSharded would produce in-process. keepFirst must
// match every part.
func MergeFreqWires(fr *Frame, keepFirst int, parts []*FreqWire) (*FreqEstimator, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("ml: no wire parts to merge")
	}
	var out *FreqEstimator
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("ml: wire part %d is nil", i)
		}
		if p.KeepFirst != keepFirst {
			return nil, fmt.Errorf("ml: wire part %d keep_first %d != %d", i, p.KeepFirst, keepFirst)
		}
		f, err := DecodeFreqWire(fr, p)
		if err != nil {
			return nil, fmt.Errorf("ml: wire part %d: %w", i, err)
		}
		if out == nil {
			out = f
			continue
		}
		out.merge(f)
	}
	return out, nil
}

// EncodeSupportWire renders a support set as a wire message.
func EncodeSupportWire(s *SupportSet) *SupportWire {
	w := &SupportWire{Dim: s.dim, Card: append([]uint32(nil), s.card...), Packed: s.packed()}
	if s.packed() {
		for k := range s.set {
			w.Keys = append(w.Keys, packedKeyString(k))
		}
	} else {
		for k := range s.setW {
			w.Keys = append(w.Keys, wideKeyString(k))
		}
	}
	sort.Strings(w.Keys)
	return w
}

// DecodeSupportWire rebuilds a support-set partial against the local frame.
func DecodeSupportWire(fr *Frame, w *SupportWire) (*SupportSet, error) {
	fr.Intern()
	k := newKeyer(fr)
	if err := checkFingerprint(k, w.Dim, w.Card, w.Packed); err != nil {
		return nil, err
	}
	s := &SupportSet{keyer: k}
	if s.packed() {
		s.set = make(map[uint64]struct{}, len(w.Keys))
		for _, ks := range w.Keys {
			key, err := parsePackedKey(ks)
			if err != nil {
				return nil, err
			}
			s.set[key] = struct{}{}
		}
		return s, nil
	}
	s.setW = make(map[string]struct{}, len(w.Keys))
	for _, ks := range w.Keys {
		key, err := parseWideKey(ks)
		if err != nil {
			return nil, err
		}
		s.setW[key] = struct{}{}
	}
	return s, nil
}

// MergeSupportWires decodes and unions the per-shard support parts. Set
// union is order-independent, but callers still pass parts in plan order for
// symmetry with MergeFreqWires.
func MergeSupportWires(fr *Frame, parts []*SupportWire) (*SupportSet, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("ml: no support parts to merge")
	}
	var out *SupportSet
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("ml: support part %d is nil", i)
		}
		s, err := DecodeSupportWire(fr, p)
		if err != nil {
			return nil, fmt.Errorf("ml: support part %d: %w", i, err)
		}
		if out == nil {
			out = s
			continue
		}
		out.union(s)
	}
	return out, nil
}
