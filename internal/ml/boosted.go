package ml

// Boosted is a two-stage regressor: a ridge linear model fit first, then a
// random forest fit on its residuals; predictions are the sum. In-sample it
// is at least as expressive as the forest alone, and outside the training
// support the linear trend keeps extrapolating where a bare forest would
// saturate at the nearest leaf — exactly the failure mode of hypothetical
// updates that push attributes to the edge of their observed range (e.g.
// "set every assignment score to 100").
type Boosted struct {
	lin    *Linear
	forest *Forest
}

// FitBoosted trains the linear stage, then the forest stage on residuals.
func FitBoosted(X [][]float64, y []float64, p ForestParams) *Boosted {
	return FitBoostedFrame(FrameFromRows(X), nil, y, p)
}

// FitBoostedFrame trains both stages over frame rows. sel maps training
// positions to frame rows (nil for identity); y is parallel to positions.
func FitBoostedFrame(fr *Frame, sel []int, y []float64, p ForestParams) *Boosted {
	lin := FitLinearFrame(fr, sel, y, 1e-6)
	resid := make([]float64, len(y))
	x := make([]float64, fr.Dim())
	for pos := range y {
		r := pos
		if sel != nil {
			r = sel[pos]
		}
		fr.Gather(r, x)
		resid[pos] = y[pos] - lin.Predict(x)
	}
	return &Boosted{lin: lin, forest: FitForestFrame(fr, sel, resid, p)}
}

// Predict returns the linear prediction plus the forest residual correction.
func (b *Boosted) Predict(x []float64) float64 {
	return b.lin.Predict(x) + b.forest.Predict(x)
}
