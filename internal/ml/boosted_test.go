package ml

import (
	"math"
	"testing"

	"hyper/internal/stats"
)

func newTestRNG(seed int64) *stats.RNG { return stats.NewRNG(seed) }

func TestBoostedExtrapolatesLinearTrend(t *testing.T) {
	// y = 3x on x in [0, 10]; prediction at x = 15 must keep climbing
	// (a bare forest saturates at ~30).
	rng := newTestRNG(21)
	X := make([][]float64, 2000)
	y := make([]float64, 2000)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = 3*x + 0.2*rng.NormFloat64()
	}
	b := FitBoosted(X, y, ForestParams{NumTrees: 10, Seed: 21})
	f := FitForest(X, y, ForestParams{NumTrees: 10, Seed: 21})
	atEdge := b.Predict([]float64{15})
	if atEdge < 40 {
		t.Errorf("boosted at x=15 = %.1f, should extrapolate beyond 40", atEdge)
	}
	if fEdge := f.Predict([]float64{15}); atEdge <= fEdge {
		t.Errorf("boosted (%.1f) should extrapolate beyond the bare forest (%.1f)", atEdge, fEdge)
	}
}

func TestBoostedMatchesForestInDistribution(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * 4 }
	X, y := makeXY(3000, 1, 22, f, 0.2)
	b := FitBoosted(X, y, ForestParams{NumTrees: 15, Seed: 22})
	if m := mse(b, X, y); m > 0.5 {
		t.Errorf("boosted in-distribution MSE = %.3f", m)
	}
}
