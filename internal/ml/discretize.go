package ml

import "fmt"

// Discretizer maps a continuous range onto equi-width buckets, the
// bucketization HypeR applies to continuous attributes before building the
// how-to integer program (Section 4.3, Figure 9).
type Discretizer struct {
	Lo, Hi  float64
	Buckets int
}

// NewDiscretizer returns a discretizer over [lo, hi] with n buckets. It
// normalizes degenerate inputs (n<1 becomes 1; hi<=lo widens by 1).
func NewDiscretizer(lo, hi float64, n int) *Discretizer {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Discretizer{Lo: lo, Hi: hi, Buckets: n}
}

// Width returns the bucket width.
func (d *Discretizer) Width() float64 { return (d.Hi - d.Lo) / float64(d.Buckets) }

// Bucket returns the bucket index of x, clamped to [0, Buckets).
func (d *Discretizer) Bucket(x float64) int {
	if x <= d.Lo {
		return 0
	}
	if x >= d.Hi {
		return d.Buckets - 1
	}
	i := int((x - d.Lo) / d.Width())
	if i >= d.Buckets {
		i = d.Buckets - 1
	}
	return i
}

// Midpoint returns the representative (center) value of bucket i.
func (d *Discretizer) Midpoint(i int) float64 {
	return d.Lo + d.Width()*(float64(i)+0.5)
}

// Midpoints returns all bucket centers in order; these are the candidate
// update values the how-to IP chooses among.
func (d *Discretizer) Midpoints() []float64 {
	out := make([]float64, d.Buckets)
	for i := range out {
		out[i] = d.Midpoint(i)
	}
	return out
}

// Edges returns the Buckets+1 bucket boundaries.
func (d *Discretizer) Edges() []float64 {
	out := make([]float64, d.Buckets+1)
	for i := range out {
		out[i] = d.Lo + d.Width()*float64(i)
	}
	return out
}

// String describes the discretizer.
func (d *Discretizer) String() string {
	return fmt.Sprintf("discretize[%g,%g] into %d buckets (width %g)", d.Lo, d.Hi, d.Buckets, d.Width())
}
