package ml

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"hyper/internal/relation"
	"hyper/internal/shard"
)

// digestRel builds a relation with every value-kind wrinkle CollectStats
// handles: nulls, NaNs, mixed magnitudes, and a non-numeric column.
func digestRel(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.NewRelation("D", relation.MustSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Num", Kind: relation.KindFloat, Mutable: true},
		relation.Column{Name: "Cat", Kind: relation.KindString, Mutable: true},
		relation.Column{Name: "Sparse", Kind: relation.KindFloat, Mutable: true},
	))
	for i := 0; i < n; i++ {
		num := relation.Float(float64(i%17) - 8.5)
		if i%23 == 0 {
			num = relation.Float(math.NaN())
		}
		sparse := relation.Null
		if i%5 == 0 {
			sparse = relation.Float(float64(i) * 1e3)
		}
		row := relation.Tuple{
			relation.Int(int64(i)),
			num,
			relation.String(fmt.Sprintf("c%d", i%7)),
			sparse,
		}
		if err := rel.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// statsEqual compares ColumnStats with NaN-aware float equality (NaN != NaN
// under ==, but digest merges must preserve NaN mins/maxes bit for bit).
func statsEqual(a, b []ColumnStats) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(s ColumnStats) ColumnStats {
		fix := func(f float64) float64 {
			if math.IsNaN(f) {
				return math.Inf(-1) // canonical stand-in for comparison only
			}
			return f
		}
		s.NullFrac = fix(s.NullFrac)
		s.MaxAbs = fix(s.MaxAbs)
		s.Min = fix(s.Min)
		s.Max = fix(s.Max)
		return s
	}
	for i := range a {
		na, nb := norm(a[i]), norm(b[i])
		if math.IsNaN(a[i].Min) != math.IsNaN(b[i].Min) || math.IsNaN(a[i].Max) != math.IsNaN(b[i].Max) {
			return false
		}
		if !reflect.DeepEqual(na, nb) {
			return false
		}
	}
	return true
}

// TestRelationDigestMatchesCollectStats is the core parity contract: a
// digest advanced over any append schedule must render exactly the stats a
// fresh whole-relation CollectStats computes — that identity is what lets
// the serving layer seed the planner's rank cache without rescanning.
func TestRelationDigestMatchesCollectStats(t *testing.T) {
	full := digestRel(t, 500)
	for _, target := range []int{1, 7, 64, 500, 1000} {
		d := NewRelationDigest(target)
		// Grow the relation in uneven steps, advancing after each.
		for _, upto := range []int{1, 2, 63, 64, 65, 200, 499, 500} {
			prefix := relation.NewRelation("D", full.Schema())
			for i := 0; i < upto; i++ {
				if err := prefix.Insert(full.Row(i)); err != nil {
					t.Fatal(err)
				}
			}
			d.Advance(prefix)
			if got, want := d.Stats(), CollectStats(prefix); !statsEqual(got, want) {
				t.Fatalf("target=%d rows=%d: digest stats diverge\n got %+v\nwant %+v", target, upto, got, want)
			}
			if d.FittedRows() != upto {
				t.Fatalf("target=%d rows=%d: FittedRows = %d", target, upto, d.FittedRows())
			}
		}
	}
}

// TestRelationDigestSealsShards pins the incremental contract: advancing
// over appended rows fits only the tail shards the new rows touch, and
// every shard sealed by an earlier advance is counted reused, not refit.
func TestRelationDigestSealsShards(t *testing.T) {
	full := digestRel(t, 300)
	const target = 100
	d := NewRelationDigest(target)

	prefix := relation.NewRelation("D", full.Schema())
	grow := func(upto int) {
		t.Helper()
		for i := prefix.Len(); i < upto; i++ {
			if err := prefix.Insert(full.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	grow(150)
	fitted, reused := d.Advance(prefix)
	if fitted != 2 || reused != 0 {
		t.Fatalf("first advance: fitted=%d reused=%d, want 2, 0", fitted, reused)
	}
	// 50 more rows: shard [100,200) is still open (grows in place), shard
	// [0,100) is sealed and must not be rescanned.
	grow(200)
	fitted, reused = d.Advance(prefix)
	if fitted != 1 || reused != 1 {
		t.Fatalf("tail advance: fitted=%d reused=%d, want 1, 1", fitted, reused)
	}
	// No new rows: everything is sealed.
	fitted, reused = d.Advance(prefix)
	if fitted != 0 || reused != 2 {
		t.Fatalf("no-op advance: fitted=%d reused=%d, want 0, 2", fitted, reused)
	}
	grow(300)
	fitted, reused = d.Advance(prefix)
	if fitted != 1 || reused != 2 {
		t.Fatalf("new shard advance: fitted=%d reused=%d, want 1, 2", fitted, reused)
	}
	if got, want := d.Stats(), CollectStats(prefix); !statsEqual(got, want) {
		t.Fatalf("after sealed advances: digest stats diverge\n got %+v\nwant %+v", got, want)
	}
}

// TestStridedPrefixStability is why digests shard with Strided rather than
// Rows: growing n must never move an existing shard boundary, only extend
// the last shard or add new ones.
func TestStridedPrefixStability(t *testing.T) {
	const target = 64
	for n := 1; n < 1000; n += 13 {
		p, q := shard.Strided(n, target), shard.Strided(n+target+3, target)
		for i := 0; i < p.Shards(); i++ {
			lo, hi := p.Bounds(i)
			qlo, qhi := q.Bounds(i)
			if lo != qlo {
				t.Fatalf("n=%d shard %d: lo moved %d -> %d", n, i, lo, qlo)
			}
			// Only the last shard of p may have been extended.
			if i < p.Shards()-1 && hi != qhi {
				t.Fatalf("n=%d shard %d: sealed hi moved %d -> %d", n, i, hi, qhi)
			}
		}
	}
}
