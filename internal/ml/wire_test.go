package ml

import (
	"encoding/json"
	"reflect"
	"testing"

	"hyper/internal/shard"
)

// wireFrame builds a deterministic discrete frame: dim columns whose values
// cycle with different periods, so every column has a small alphabet and
// rows repeat combinations (cells accumulate).
func wireFrame(rows, dim int) (*Frame, []float64) {
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		X[r] = make([]float64, dim)
		for c := 0; c < dim; c++ {
			X[r][c] = float64((r*17 + c*5) % (3 + c%13))
		}
		y[r] = float64(r%7) * 0.25
	}
	return FrameFromRows(X), y
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestFreqWireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		dim  int
	}{
		{"packed", 4},
		{"wide", 24}, // alphabet product overflows uint64 -> wide keys
	} {
		t.Run(tc.name, func(t *testing.T) {
			fr, y := wireFrame(500, tc.dim)
			rows := allRows(500)
			fit := FitFreqFrame(fr, rows, y, 1)
			if fit.packed() != (tc.name == "packed") {
				t.Fatalf("key mode: packed=%v, want %v", fit.packed(), tc.name == "packed")
			}
			w := EncodeFreqWire(fit)
			raw, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			var back FreqWire
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeFreqWire(fr, &back)
			if err != nil {
				t.Fatal(err)
			}
			// The decoded estimator must predict identically everywhere,
			// including backoff and global-mean fallbacks.
			x := make([]float64, tc.dim)
			for r := 0; r < 500; r += 7 {
				fr.Gather(r, x)
				if got, want := dec.Predict(x), fit.Predict(x); got != want {
					t.Fatalf("row %d: decoded predict %v != %v", r, got, want)
				}
				x[tc.dim-1] = 99 // unseen value: exercises backoff
				if got, want := dec.Predict(x), fit.Predict(x); got != want {
					t.Fatalf("row %d backoff: decoded predict %v != %v", r, got, want)
				}
			}
			// Canonical wire forms must match exactly.
			if !reflect.DeepEqual(EncodeFreqWire(dec), w) {
				t.Fatal("re-encoded wire form differs from original")
			}
		})
	}
}

// TestMergeFreqWiresParity proves that fitting per shard in separate
// "processes" (separately constructed identical frames), shipping the parts
// over the wire, and merging them in plan order reproduces the in-process
// sharded fit bit for bit.
func TestMergeFreqWiresParity(t *testing.T) {
	const rows = 1000
	for _, dim := range []int{5, 24} {
		fr, y := wireFrame(rows, dim)
		rowIdx := allRows(rows)
		plan := shard.Rows(rows, 128)
		if plan.Shards() < 2 {
			t.Fatal("plan too small for the test")
		}
		local := FitFreqFrameSharded(fr, rowIdx, y, 2, plan, 4)

		// Each shard is fitted against its own frame replica, as a remote
		// worker would.
		parts := make([]*FreqWire, plan.Shards())
		for s := 0; s < plan.Shards(); s++ {
			replica, _ := wireFrame(rows, dim)
			lo, hi := plan.Bounds(s)
			parts[s] = EncodeFreqWire(FitFreqFrame(replica, rowIdx[lo:hi], y[lo:hi], 2))
		}
		merged, err := MergeFreqWires(fr, 2, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(EncodeFreqWire(merged), EncodeFreqWire(local)) {
			t.Fatalf("dim %d: merged wire parts differ from in-process sharded fit", dim)
		}
	}
}

func TestMergeSupportWiresParity(t *testing.T) {
	const rows = 600
	fr, _ := wireFrame(rows, 6)
	rowIdx := allRows(rows)
	plan := shard.Rows(rows, 100)
	local := NewSupportSet(fr, rowIdx)

	parts := make([]*SupportWire, plan.Shards())
	for s := 0; s < plan.Shards(); s++ {
		replica, _ := wireFrame(rows, 6)
		lo, hi := plan.Bounds(s)
		parts[s] = EncodeSupportWire(NewSupportSet(replica, rowIdx[lo:hi]))
	}
	merged, err := MergeSupportWires(fr, parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != local.Len() {
		t.Fatalf("merged support %d keys, local %d", merged.Len(), local.Len())
	}
	x := make([]float64, 6)
	for r := 0; r < rows; r++ {
		fr.Gather(r, x)
		if !merged.Has(x) {
			t.Fatalf("row %d missing from merged support", r)
		}
	}
	x[0] = 1e9
	if merged.Has(x) {
		t.Fatal("unseen combination reported as supported")
	}
}

func TestDecodeFreqWireRejectsForeignFrame(t *testing.T) {
	fr, y := wireFrame(300, 4)
	fit := FitFreqFrame(fr, allRows(300), y, 0)
	w := EncodeFreqWire(fit)

	other, _ := wireFrame(300, 5) // different dim
	if _, err := DecodeFreqWire(other, w); err == nil {
		t.Fatal("decode against a different-dim frame must fail")
	}
	// Same dim, different content -> different cardinalities.
	X := make([][]float64, 300)
	for r := range X {
		X[r] = []float64{float64(r % 17), float64(r % 13), float64(r % 11), float64(r % 23)}
	}
	if _, err := DecodeFreqWire(FrameFromRows(X), w); err == nil {
		t.Fatal("decode against a different-content frame must fail")
	}
}
