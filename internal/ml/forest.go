package ml

import (
	"runtime"
	"sync"

	"hyper/internal/stats"
)

// ForestParams configures random-forest training.
type ForestParams struct {
	NumTrees int // number of trees (default 20)
	Tree     TreeParams
	Seed     int64
}

// DefaultForestParams mirrors the paper's random-forest regressor setup at a
// size tuned for interactive use.
func DefaultForestParams() ForestParams {
	return ForestParams{NumTrees: 20, Tree: DefaultTreeParams()}
}

// Forest is a fitted random-forest regressor: bagged CART trees with
// per-split feature subsampling, predictions averaged.
type Forest struct {
	trees []*Tree
}

// FitForest trains a random forest on (X, y). When p.Tree.MaxFeatures is 0
// it defaults to ceil(dim/3), the standard regression-forest heuristic.
// Trees are trained in parallel; determinism is preserved by deriving one
// RNG per tree from the seed.
func FitForest(X [][]float64, y []float64, p ForestParams) *Forest {
	return FitForestFrame(FrameFromRows(X), nil, y, p)
}

// FitForestFrame trains a random forest over frame rows. sel maps training
// positions to frame rows (nil for identity); y is parallel to positions.
func FitForestFrame(fr *Frame, sel []int, y []float64, p ForestParams) *Forest {
	if p.NumTrees <= 0 {
		p.NumTrees = 20
	}
	dim := fr.Dim()
	if p.Tree.MaxFeatures <= 0 && dim > 3 {
		p.Tree.MaxFeatures = (dim + 2) / 3
	}
	f := &Forest{trees: make([]*Tree, p.NumTrees)}
	root := stats.NewRNG(p.Seed)
	rngs := make([]*stats.RNG, p.NumTrees)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > p.NumTrees {
		workers = p.NumTrees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rng := rngs[i]
				rows := rng.Bootstrap(len(y))
				f.trees[i] = FitTreeFrame(fr, sel, y, rows, p.Tree, rng)
			}
		}()
	}
	for i := 0; i < p.NumTrees; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return f
}

// Predict averages the tree predictions for x.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
