package ml

import (
	"math"

	"hyper/internal/relation"
)

// ColumnStats summarizes one relation column for the planner's cost model:
// the distinct-value count drives selectivity estimates for equality and IN
// predicates, the numeric range drives range-predicate interpolation, and
// the remaining flags are the exactness guards a columnar filter needs to
// stay bit-identical to row-at-a-time evaluation (NaN compares "equal" to
// every number under relation.Value.Compare, and integer/float identity via
// canonical keys only holds below 1e15).
type ColumnStats struct {
	// Name is the column name.
	Name string `json:"name"`
	// Rows is the relation size the stats were collected over.
	Rows int `json:"rows"`
	// Card is the number of distinct non-null values.
	Card int `json:"card"`
	// NullFrac is the fraction of rows whose value is NULL.
	NullFrac float64 `json:"null_frac"`
	// Numeric reports that every non-null value is an int or a float.
	Numeric bool `json:"numeric"`
	// HasNaN reports that some value is a floating-point NaN.
	HasNaN bool `json:"has_nan,omitempty"`
	// MaxAbs is the largest absolute numeric value seen (0 when none).
	MaxAbs float64 `json:"max_abs,omitempty"`
	// Min and Max bound the numeric values (valid when Numeric and at least
	// one non-null value exists).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// CollectStats scans rel once and summarizes every column. This is the same
// single pass a Frame encode performs; the planner memoizes the result per
// view, so stats are collected once per materialized view, not per query.
func CollectStats(rel *relation.Relation) []ColumnStats {
	cols := rel.Schema().Columns()
	out := make([]ColumnStats, len(cols))
	n := rel.Len()
	for c := range cols {
		st := ColumnStats{
			Name: cols[c].Name, Rows: n, Numeric: true,
			Min: math.Inf(1), Max: math.Inf(-1),
		}
		distinct := make(map[string]struct{})
		nulls := 0
		for i := 0; i < n; i++ {
			v := rel.Row(i)[c]
			if v.IsNull() {
				nulls++
				continue
			}
			distinct[v.Key()] = struct{}{}
			switch v.Kind() {
			case relation.KindInt, relation.KindFloat:
				f := v.AsFloat()
				if math.IsNaN(f) {
					st.HasNaN = true
					continue
				}
				if a := math.Abs(f); a > st.MaxAbs {
					st.MaxAbs = a
				}
				if f < st.Min {
					st.Min = f
				}
				if f > st.Max {
					st.Max = f
				}
			default:
				st.Numeric = false
			}
		}
		st.Card = len(distinct)
		if n > 0 {
			st.NullFrac = float64(nulls) / float64(n)
		}
		if st.Min > st.Max { // no numeric values seen
			st.Min, st.Max = 0, 0
		}
		out[c] = st
	}
	return out
}

// Cards returns the per-column distinct-value counts of the frame's interned
// code space (forcing interning if it has not happened yet). The planner and
// the frequency estimator agree on cardinality through this one encoding.
func (f *Frame) Cards() []int {
	f.Intern()
	out := make([]int, len(f.card))
	for i, c := range f.card {
		out[i] = int(c)
	}
	return out
}
