package ml

// Linear is a ridge-regularized least-squares linear regressor. The how-to
// engine estimates candidate-update effects with it: Section 4.3 of the
// paper expresses the IP objective through a *linear* regression function φ,
// which captures weak monotone effects of continuous attributes that
// tree-based estimators smooth away.
type Linear struct {
	w []float64 // weights per feature
	b float64   // intercept
}

// FitLinear solves (XᵀX + λI) w = Xᵀy with an intercept column (the
// intercept is not regularized). It uses dense normal equations with
// Gaussian elimination, which is exact and fast for the small feature
// counts HypeR conditions on.
func FitLinear(X [][]float64, y []float64, ridge float64) *Linear {
	return FitLinearFrame(FrameFromRows(X), nil, y, ridge)
}

// FitLinearFrame fits the ridge regression over frame rows. sel maps
// training positions to frame rows (nil for identity); y is parallel to
// positions. The accumulation order matches the row-matrix path exactly, so
// coefficients are bit-identical.
func FitLinearFrame(fr *Frame, sel []int, y []float64, ridge float64) *Linear {
	if len(y) == 0 {
		return &Linear{}
	}
	d := fr.Dim()
	m := d + 1 // last column is the intercept
	// Normal matrix A (m x m) and rhs v.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	v := make([]float64, m)
	n := fr.rows
	for pos := range y {
		r := pos
		if sel != nil {
			r = sel[pos]
		}
		for i := 0; i < d; i++ {
			xi := fr.data[i*n+r]
			for j := i; j < d; j++ {
				a[i][j] += xi * fr.data[j*n+r]
			}
			a[i][m-1] += xi
			v[i] += xi * y[pos]
		}
		a[m-1][m-1]++
		v[m-1] += y[pos]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	for i := 0; i < d; i++ {
		a[i][i] += ridge
	}
	w := solveLinear(a, v)
	if w == nil {
		// Degenerate system: fall back to predicting the mean.
		mean := 0.0
		for _, yy := range y {
			mean += yy
		}
		if len(y) > 0 {
			mean /= float64(len(y))
		}
		return &Linear{w: make([]float64, d), b: mean}
	}
	return &Linear{w: w[:d], b: w[d]}
}

// solveLinear solves a·x = v by Gaussian elimination with partial pivoting;
// nil on a singular system.
func solveLinear(a [][]float64, v []float64) []float64 {
	m := len(a)
	// Work on copies.
	mat := make([][]float64, m)
	for i := range mat {
		mat[i] = append([]float64(nil), a[i]...)
	}
	rhs := append([]float64(nil), v...)
	for col := 0; col < m; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < m; r++ {
			if absf(mat[r][col]) > absf(mat[p][col]) {
				p = r
			}
		}
		if absf(mat[p][col]) < 1e-12 {
			return nil
		}
		mat[col], mat[p] = mat[p], mat[col]
		rhs[col], rhs[p] = rhs[p], rhs[col]
		inv := 1 / mat[col][col]
		for r := col + 1; r < m; r++ {
			f := mat[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				mat[r][c] -= f * mat[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < m; j++ {
			s -= mat[i][j] * x[j]
		}
		x[i] = s / mat[i][i]
	}
	return x
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Predict returns w·x + b.
func (l *Linear) Predict(x []float64) float64 {
	s := l.b
	for i, w := range l.w {
		if i < len(x) {
			s += w * x[i]
		}
	}
	return s
}

// Coefficients returns a copy of the weights and the intercept.
func (l *Linear) Coefficients() ([]float64, float64) {
	return append([]float64(nil), l.w...), l.b
}
