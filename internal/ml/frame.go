package ml

import (
	"context"
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hyper/internal/relation"
	"hyper/internal/shard"
)

// Frame is the columnar encoded view shared by every estimator of a query:
// one flat column-major float64 buffer (all rows of the relevant view,
// encoded once) plus, per column, an interned integer code for each value.
// Codes are what make the frequency estimator's support index string-free —
// a feature combination becomes a row of small integers, packed into a
// single uint64 key where the column cardinalities allow it.
//
// A Frame is immutable after construction and safe for concurrent use.
type Frame struct {
	rows, dim int
	workers   int       // construction/intern fan-out hint (0 = GOMAXPROCS)
	data      []float64 // data[c*rows+r]: value of column c at row r

	// Interned codes, built lazily by Intern (tree/forest/linear fits never
	// need them; the freq estimator and the support set do).
	internOnce sync.Once
	codes      []uint32 // codes[c*rows+r]: interned code of that value
	dicts      []dict   // per-column value (canonical bits) -> code
	card       []uint32 // distinct values per column
}

// dict interns encoded float values. Keys are canonical IEEE bits so that
// -0 and +0 share a code and NaNs (which never equal themselves) still
// intern to one code.
type dict map[uint64]uint32

func canonBits(v float64) uint64 {
	if v == 0 {
		return 0 // merge -0 and +0
	}
	if math.IsNaN(v) {
		return 0x7ff8000000000001
	}
	return math.Float64bits(v)
}

// NewFrame encodes every row of rel with enc into a frame with the default
// (GOMAXPROCS) construction fan-out.
func NewFrame(enc *Encoder, rel *relation.Relation) *Frame {
	return NewFrameWorkers(enc, rel, 0)
}

// NewFrameWorkers is NewFrame with an explicit worker fan-out for encoding
// and later interning (0 = GOMAXPROCS, 1 = serial — the engine passes its
// Shards knob so nested pools don't multiply). Column order follows the
// encoder's feature columns. Encoding parallelizes over the canonical row
// shards; each row writes its own cells, so the buffer content is identical
// for any worker count.
func NewFrameWorkers(enc *Encoder, rel *relation.Relation, workers int) *Frame {
	n, dim := rel.Len(), enc.Dim()
	f := &Frame{rows: n, dim: dim, workers: workers, data: make([]float64, n*dim)}
	plan := shard.Rows(n, 0)
	workers = plan.Workers(workers)
	bufs := make([][]float64, workers)
	_ = shard.Run(context.Background(), plan, workers, func(w, _, lo, hi int) error {
		row := bufs[w]
		if row == nil {
			row = make([]float64, dim)
			bufs[w] = row
		}
		for r := lo; r < hi; r++ {
			enc.EncodeInto(rel, rel.Row(r), row)
			for c, v := range row {
				f.data[c*n+r] = v
			}
		}
		return nil
	})
	return f
}

// FrameFromRows builds a frame from an already-encoded row matrix. It is the
// adapter behind the historical [][]float64 fit entry points.
func FrameFromRows(X [][]float64) *Frame {
	n := len(X)
	dim := 0
	if n > 0 {
		dim = len(X[0])
	}
	f := &Frame{rows: n, dim: dim, data: make([]float64, n*dim)}
	for r, x := range X {
		for c, v := range x {
			f.data[c*n+r] = v
		}
	}
	return f
}

// Intern assigns per-column integer codes to every value (idempotent, safe
// for concurrent use). Codes are dense, in first-seen row order per column.
func (f *Frame) Intern() { f.internOnce.Do(f.intern) }

func (f *Frame) intern() {
	f.codes = make([]uint32, f.rows*f.dim)
	f.dicts = make([]dict, f.dim)
	f.card = make([]uint32, f.dim)
	internCol := func(c int) {
		d := make(dict)
		f.dicts[c] = d
		col := f.data[c*f.rows : (c+1)*f.rows]
		codes := f.codes[c*f.rows : (c+1)*f.rows]
		for r, v := range col {
			b := canonBits(v)
			code, ok := d[b]
			if !ok {
				code = f.card[c]
				d[b] = code
				f.card[c]++
			}
			codes[r] = code
		}
	}
	// Columns intern independently (codes are per-column, assigned in row
	// order), so interning fans out across columns without changing any
	// code; the pool is bounded by the frame's construction fan-out hint.
	w := f.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > f.dim {
		w = f.dim
	}
	if w > 1 {
		var nextCol atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(nextCol.Add(1)) - 1
					if c >= f.dim {
						return
					}
					internCol(c)
				}
			}()
		}
		wg.Wait()
		return
	}
	for c := 0; c < f.dim; c++ {
		internCol(c)
	}
}

// Rows returns the number of encoded rows.
func (f *Frame) Rows() int { return f.rows }

// Dim returns the number of feature columns.
func (f *Frame) Dim() int { return f.dim }

// Col returns the contiguous value slice of column c (must not be mutated).
func (f *Frame) Col(c int) []float64 { return f.data[c*f.rows : (c+1)*f.rows] }

// Gather copies row r into dst, which must have length Dim().
func (f *Frame) Gather(r int, dst []float64) {
	for c := 0; c < f.dim; c++ {
		dst[c] = f.data[c*f.rows+r]
	}
}

// Per-column code space: real codes are 0..card-1; two extra symbols are
// reserved per column for prediction-time unseen values and for the backoff
// wildcard. codeUnseen must differ per column (it is card[c]); the wildcard
// is the all-ones sentinel in wide keys and card[c]+1 in packed keys.
const wideWildcard = ^uint32(0)

// keyer packs interned code rows into map keys. When the product of the
// per-column alphabets (cardinality + unseen + wildcard) fits in a uint64,
// keys are exact packed integers (radix encoding, collision-free by
// construction) and backoff keys are O(1) digit substitutions. Otherwise it
// falls back to the wide representation — the little-endian bytes of the
// code row — which is equally collision-free, just heap-allocated on
// insertion (lookups reuse a scratch buffer and stay allocation-free via the
// compiler's map[string(bytes)] optimization).
type keyer struct {
	dim    int
	dicts  []dict
	card   []uint32
	stride []uint64 // nil => wide mode
}

func newKeyer(f *Frame) keyer {
	k := keyer{dim: f.dim, dicts: f.dicts, card: f.card}
	stride := make([]uint64, f.dim)
	acc := uint64(1)
	for c := 0; c < f.dim; c++ {
		stride[c] = acc
		alpha := uint64(f.card[c]) + 2 // + unseen + wildcard
		if acc > math.MaxUint64/alpha {
			return k // product overflows: wide mode
		}
		acc *= alpha
	}
	k.stride = stride
	return k
}

func (k *keyer) packed() bool { return k.stride != nil }

// encode interns the raw feature vector x into dst; values never seen at
// frame construction get the per-column unseen sentinel (they can match no
// training key, which is exactly the semantics of zero support).
func (k *keyer) encode(x []float64, dst []uint32) {
	for c, v := range x {
		if code, ok := k.dicts[c][canonBits(v)]; ok {
			dst[c] = code
		} else {
			dst[c] = k.card[c] // unseen sentinel
		}
	}
}

// encodeScratch interns x into buf — stack space for up to 16 features,
// heap past that — and returns the code slice. Small enough to inline, so
// the caller's buffer never escapes in the common case.
func (k *keyer) encodeScratch(x []float64, buf *[16]uint32) []uint32 {
	var codes []uint32
	if k.dim > len(buf) {
		codes = make([]uint32, k.dim)
	} else {
		codes = buf[:k.dim]
	}
	k.encode(x, codes)
	return codes
}

// packKey radix-packs a full code row.
func (k *keyer) packKey(codes []uint32) uint64 {
	key := uint64(0)
	for c, code := range codes {
		key += uint64(code) * k.stride[c]
	}
	return key
}

// packPrefix packs only the first n columns (the keepFirst marginal).
func (k *keyer) packPrefix(codes []uint32, n int) uint64 {
	key := uint64(0)
	for c := 0; c < n; c++ {
		key += uint64(codes[c]) * k.stride[c]
	}
	return key
}

// wildcardAt substitutes the wildcard digit for column c in a packed key.
func (k *keyer) wildcardAt(key uint64, codes []uint32, c int) uint64 {
	return key + uint64(k.card[c]+1-codes[c])*k.stride[c]
}

// wideKey appends the little-endian bytes of the first n codes to buf.
func wideKey(buf []byte, codes []uint32, n int) []byte {
	buf = buf[:0]
	for c := 0; c < n; c++ {
		buf = binary.LittleEndian.AppendUint32(buf, codes[c])
	}
	return buf
}

// wideWildcardAt patches the 4 bytes of column c to the wildcard sentinel.
func wideWildcardAt(buf []byte, c int) {
	binary.LittleEndian.PutUint32(buf[c*4:], wideWildcard)
}

// wideRestoreAt restores column c's code after a wildcard substitution.
func wideRestoreAt(buf []byte, codes []uint32, c int) {
	binary.LittleEndian.PutUint32(buf[c*4:], codes[c])
}

// SupportSet is the non-zero-support membership index of A.4 detached from
// any estimator: the engine probes it to decide whether a hypothetical
// feature combination occurs in the training data at all (the freq→forest
// fallback check) without training a regressor first.
type SupportSet struct {
	keyer
	set  map[uint64]struct{}
	setW map[string]struct{}
}

// NewSupportSet indexes the exact feature combinations of the given frame
// rows.
func NewSupportSet(f *Frame, rows []int) *SupportSet {
	f.Intern()
	s := &SupportSet{keyer: newKeyer(f)}
	codes := make([]uint32, f.dim)
	if s.packed() {
		s.set = make(map[uint64]struct{}, len(rows))
		for _, r := range rows {
			for c := 0; c < f.dim; c++ {
				codes[c] = f.codes[c*f.rows+r]
			}
			s.set[s.packKey(codes)] = struct{}{}
		}
		return s
	}
	s.setW = make(map[string]struct{}, len(rows))
	buf := make([]byte, 0, 4*f.dim)
	for _, r := range rows {
		for c := 0; c < f.dim; c++ {
			codes[c] = f.codes[c*f.rows+r]
		}
		buf = wideKey(buf, codes, f.dim)
		if _, ok := s.setW[string(buf)]; !ok {
			s.setW[string(buf)] = struct{}{}
		}
	}
	return s
}

// Has reports whether the exact combination x occurs in the indexed rows.
func (s *SupportSet) Has(x []float64) bool {
	var stack [16]uint32
	codes := s.encodeScratch(x, &stack)
	if s.packed() {
		_, ok := s.set[s.packKey(codes)]
		return ok
	}
	var bstack [64]byte
	buf := wideKey(bstack[:0], codes, s.dim)
	_, ok := s.setW[string(buf)]
	return ok
}

// Len returns the number of distinct indexed combinations.
func (s *SupportSet) Len() int {
	if s.packed() {
		return len(s.set)
	}
	return len(s.setW)
}
