package ml

import (
	"math"
	"testing"
	"testing/quick"

	"hyper/internal/relation"
	"hyper/internal/stats"
)

// makeXY generates y = f(x) + noise over random features.
func makeXY(n, d int, seed int64, f func(x []float64) float64, noise float64) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()*10 - 5
		}
		X[i] = x
		y[i] = f(x) + noise*rng.NormFloat64()
	}
	return X, y
}

func mse(m Regressor, X [][]float64, y []float64) float64 {
	s := 0.0
	for i, x := range X {
		d := m.Predict(x) - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

func TestTreeFitsStepFunction(t *testing.T) {
	X, y := makeXY(2000, 2, 1, func(x []float64) float64 {
		if x[0] > 0 {
			return 10
		}
		return -10
	}, 0.5)
	tree := FitTree(X, y, nil, DefaultTreeParams(), nil)
	if m := mse(tree, X, y); m > 1 {
		t.Errorf("tree MSE on step function = %.3f", m)
	}
	if tree.Depth() < 1 || tree.Leaves() < 2 {
		t.Errorf("tree depth=%d leaves=%d", tree.Depth(), tree.Leaves())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X, y := makeXY(100, 2, 2, func([]float64) float64 { return 7 }, 0)
	tree := FitTree(X, y, nil, DefaultTreeParams(), nil)
	if tree.Leaves() != 1 {
		t.Errorf("constant target should yield one leaf, got %d", tree.Leaves())
	}
	if tree.Predict([]float64{0, 0}) != 7 {
		t.Errorf("predict = %g", tree.Predict([]float64{0, 0}))
	}
}

func TestTreeRespectsDepthAndLeaf(t *testing.T) {
	X, y := makeXY(1000, 3, 3, func(x []float64) float64 { return x[0] * x[1] }, 0.1)
	p := TreeParams{MaxDepth: 3, MinLeaf: 50, MaxThresholds: 16}
	tree := FitTree(X, y, nil, p, nil)
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds max 3", tree.Depth())
	}
}

func TestForestBeatsGuessOnNonlinear(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * 3 * x[1] }
	X, y := makeXY(3000, 2, 4, f, 0.3)
	forest := FitForest(X, y, ForestParams{NumTrees: 15, Seed: 4, Tree: DefaultTreeParams()})
	var base stats.Summary
	for _, yy := range y {
		base.Add(yy)
	}
	if m := mse(forest, X, y); m > 0.5*base.Var() {
		t.Errorf("forest MSE %.3f should beat half the variance %.3f", m, base.Var())
	}
	if forest.NumTrees() != 15 {
		t.Errorf("NumTrees = %d", forest.NumTrees())
	}
}

func TestForestDeterminism(t *testing.T) {
	X, y := makeXY(500, 3, 5, func(x []float64) float64 { return x[0] + x[2] }, 0.2)
	p := ForestParams{NumTrees: 8, Seed: 99}
	a, b := FitForest(X, y, p), FitForest(X, y, p)
	for i := 0; i < 20; i++ {
		x := X[i]
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("forest training must be deterministic per seed (even when parallel)")
		}
	}
}

func TestFreqExactAndBackoff(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 2}, {2, 1}}
	y := []float64{10, 20, 30, 40}
	f := FitFreq(X, y)
	if got := f.Predict([]float64{1, 1}); got != 15 {
		t.Errorf("exact cell = %g, want 15", got)
	}
	if f.Support() != 3 {
		t.Errorf("Support = %d", f.Support())
	}
	if f.SupportOf([]float64{1, 2}) != 1 || f.SupportOf([]float64{9, 9}) != 0 {
		t.Error("SupportOf misbehaves")
	}
	// Unseen (2,2): single-feature wildcards (2,*) -> 40 and (*,2) -> 30,
	// averaged = 35.
	if got := f.Predict([]float64{2, 2}); got != 35 {
		t.Errorf("backoff = %g, want 35", got)
	}
	// Completely unseen: global mean = 25.
	if got := f.Predict([]float64{7, 7}); got != 25 {
		t.Errorf("global fallback = %g, want 25", got)
	}
}

func TestFreqKeepFirstProtectsUpdateFeature(t *testing.T) {
	// Feature 0 is the "update" feature; backoff must never wildcard it.
	X := [][]float64{{1, 1}, {1, 2}, {2, 2}}
	y := []float64{10, 20, 50}
	f := FitFreqKeep(X, y, 1)
	// (2, 1) unseen: wildcard feature 1 -> key "2,*" -> 50.
	if got := f.Predict([]float64{2, 1}); got != 50 {
		t.Errorf("keepFirst backoff = %g, want 50", got)
	}
	// (3, 1): feature-0 value 3 never seen; firstOnly has no "3" -> global.
	want := (10.0 + 20 + 50) / 3
	if got := f.Predict([]float64{3, 1}); math.Abs(got-want) > 1e-12 {
		t.Errorf("global = %g, want %g", got, want)
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	X, y := makeXY(2000, 3, 6, func(x []float64) float64 {
		return 2*x[0] - 3*x[1] + 0.5*x[2] + 7
	}, 0.1)
	l := FitLinear(X, y, 1e-6)
	w, b := l.Coefficients()
	want := []float64{2, -3, 0.5}
	for i, ww := range want {
		if math.Abs(w[i]-ww) > 0.02 {
			t.Errorf("w[%d] = %.4f, want %.1f", i, w[i], ww)
		}
	}
	if math.Abs(b-7) > 0.05 {
		t.Errorf("intercept = %.4f", b)
	}
}

func TestLinearDegenerate(t *testing.T) {
	// A constant feature makes XtX singular without ridge; ridge handles it.
	X := [][]float64{{1, 5}, {1, 6}, {1, 7}}
	y := []float64{5, 6, 7}
	l := FitLinear(X, y, 1e-6)
	if math.Abs(l.Predict([]float64{1, 6.5})-6.5) > 0.01 {
		t.Errorf("predict = %g", l.Predict([]float64{1, 6.5}))
	}
	empty := FitLinear(nil, nil, 1)
	if empty.Predict([]float64{1}) != 0 {
		t.Error("empty fit should predict 0")
	}
}

func TestDiscretizer(t *testing.T) {
	d := NewDiscretizer(0, 10, 5)
	if d.Width() != 2 {
		t.Errorf("Width = %g", d.Width())
	}
	if d.Bucket(-1) != 0 || d.Bucket(11) != 4 || d.Bucket(3) != 1 {
		t.Error("Bucket misbehaves")
	}
	mids := d.Midpoints()
	if len(mids) != 5 || mids[0] != 1 || mids[4] != 9 {
		t.Errorf("Midpoints = %v", mids)
	}
	edges := d.Edges()
	if len(edges) != 6 || edges[0] != 0 || edges[5] != 10 {
		t.Errorf("Edges = %v", edges)
	}
	// Degenerate inputs normalize.
	d2 := NewDiscretizer(5, 5, 0)
	if d2.Buckets != 1 || d2.Hi <= d2.Lo {
		t.Errorf("degenerate discretizer = %+v", d2)
	}
	if d.String() == "" {
		t.Error("String should render")
	}
}

// Property: every value falls into the bucket whose edges bracket it.
func TestDiscretizerBucketProperty(t *testing.T) {
	d := NewDiscretizer(-3, 7, 13)
	f := func(raw uint16) bool {
		x := -5 + float64(raw)/65535*15 // spans beyond [lo, hi]
		b := d.Bucket(x)
		if b < 0 || b >= d.Buckets {
			return false
		}
		edges := d.Edges()
		if x <= d.Lo {
			return b == 0
		}
		if x >= d.Hi {
			return b == d.Buckets-1
		}
		return x >= edges[b]-1e-9 && x <= edges[b+1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncoder(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(
		relation.Column{Name: "N", Kind: relation.KindFloat},
		relation.Column{Name: "C", Kind: relation.KindString},
		relation.Column{Name: "B", Kind: relation.KindBool},
	))
	rel.MustInsert(relation.Float(1.5), relation.String("b"), relation.Bool(true))
	rel.MustInsert(relation.Float(2.5), relation.String("a"), relation.Bool(false))
	enc := NewEncoder(rel, []string{"N", "C", "B"})
	if enc.Dim() != 3 {
		t.Errorf("Dim = %d", enc.Dim())
	}
	v0 := enc.Encode(rel, rel.Row(0))
	if v0[0] != 1.5 {
		t.Errorf("numeric passthrough = %g", v0[0])
	}
	// Categorical codes are assigned in sorted order: a=0, b=1.
	if v0[1] != 1 {
		t.Errorf("code for 'b' = %g, want 1", v0[1])
	}
	if v0[2] != 1 {
		t.Errorf("bool true = %g", v0[2])
	}
	if got := enc.EncodeValue(1, relation.String("zzz")); got != -1 {
		t.Errorf("unseen category = %g, want -1", got)
	}
	m := enc.Matrix(rel)
	if len(m) != 2 || m[1][1] != 0 {
		t.Errorf("Matrix = %v", m)
	}
}

// Property: freq estimator reproduces exact conditional means on seen data.
func TestFreqExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 50 + rng.Intn(200)
		X := make([][]float64, n)
		y := make([]float64, n)
		sums := map[[2]float64][2]float64{}
		for i := 0; i < n; i++ {
			a, b := float64(rng.Intn(4)), float64(rng.Intn(3))
			X[i] = []float64{a, b}
			y[i] = rng.Float64() * 10
			s := sums[[2]float64{a, b}]
			sums[[2]float64{a, b}] = [2]float64{s[0] + y[i], s[1] + 1}
		}
		fe := FitFreq(X, y)
		for k, s := range sums {
			if math.Abs(fe.Predict([]float64{k[0], k[1]})-s[0]/s[1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
