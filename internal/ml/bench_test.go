package ml

// FreqEstimator fit/predict benchmarks with allocation reporting: the
// support index is the reason discrete what-ifs stay linear in data size
// (A.4), so its per-row cost — and especially per-row allocations — is the
// engine's hot path.

import (
	"fmt"
	"testing"

	"hyper/internal/relation"
)

// benchFreqData builds a discrete feature matrix shaped like the German
// conditioning set: dim features with small integer domains.
func benchFreqData(rows, dim int) ([][]float64, []float64) {
	X := make([][]float64, rows)
	y := make([]float64, rows)
	flat := make([]float64, rows*dim)
	state := uint64(0x9e3779b97f4a7c15)
	for r := 0; r < rows; r++ {
		X[r] = flat[r*dim : (r+1)*dim]
		for c := 0; c < dim; c++ {
			state = state*6364136223846793005 + 1442695040888963407
			X[r][c] = float64((state >> 33) % 4)
		}
		y[r] = float64((state >> 17) % 2)
	}
	return X, y
}

func BenchmarkFreqFit(b *testing.B) {
	X, y := benchFreqData(20000, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := FitFreqKeep(X, y, 1)
		if f.Support() == 0 {
			b.Fatal("empty support")
		}
	}
}

func BenchmarkFreqPredict(b *testing.B) {
	X, y := benchFreqData(20000, 6)
	f := FitFreqKeep(X, y, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := f.Predict(X[i%len(X)]); v < 0 {
			b.Fatal("negative mean")
		}
	}
}

func BenchmarkEncoderMatrix(b *testing.B) {
	rel := relation.NewRelation("T", relation.MustSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "N", Kind: relation.KindFloat},
		relation.Column{Name: "C", Kind: relation.KindString},
		relation.Column{Name: "D", Kind: relation.KindInt},
	))
	for i := 0; i < 5000; i++ {
		rel.MustInsert(relation.Int(int64(i)), relation.Float(float64(i%97)/7),
			relation.String(fmt.Sprintf("cat%d", i%11)), relation.Int(int64(i%5)))
	}
	enc := NewEncoder(rel, []string{"N", "C", "D"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := enc.Matrix(rel); len(m) != rel.Len() {
			b.Fatal("bad matrix")
		}
	}
}
