package ml

import (
	"context"

	"hyper/internal/shard"
)

// Shard-parallel estimator fitting. The frequency estimator and the support
// set are the shard-mergeable estimators: their indexes are sums of
// per-row cells (counts and value sums keyed by interned code combinations),
// so fitting disjoint row ranges independently and folding the partial
// indexes together in shard order reconstructs the whole-range fit exactly —
// integer counts and set membership are associative, and float cell sums
// reduce along the plan's fixed tree, making the result a pure function of
// (frame, rows, y, plan), independent of the worker count executing it.
// Tree, forest and linear fits have no such decomposition (splits and normal
// equations are global), so they stay whole-frame; the engine consults
// ShardMergeable to decide.

// ShardMergeable reports whether the named estimator kind ("freq",
// "forest", "linear", ...) supports per-shard fitting with exact merge.
func ShardMergeable(kind string) bool { return kind == "freq" }

// FitFreqFrameSharded fits the frequency estimator over the frame rows
// selected by rows, partitioned by plan: shard s fits rows[lo:hi] (in
// parallel across at most workers goroutines), and the partial indexes merge
// in shard order. A plan with fewer than two shards degenerates to the plain
// FitFreqFrame.
func FitFreqFrameSharded(fr *Frame, rows []int, y []float64, keepFirst int, plan shard.Plan, workers int) *FreqEstimator {
	if plan.Shards() <= 1 {
		return FitFreqFrame(fr, rows, y, keepFirst)
	}
	fr.Intern() // once, before the fan-out: part fits share the codes
	parts := make([]*FreqEstimator, plan.Shards())
	// The background context is deliberate: fitting is not cancellable
	// mid-shard (a partially merged index would poison the shared cache),
	// and callers observe their contexts between estimator fits.
	_ = shard.Run(context.Background(), plan, workers, func(_, s, lo, hi int) error {
		parts[s] = FitFreqFrame(fr, rows[lo:hi], y[lo:hi], keepFirst)
		return nil
	})
	out := parts[0]
	for _, p := range parts[1:] {
		out.merge(p)
	}
	return out
}

// NewSupportSetSharded builds the support index with per-shard construction
// and a set union. Membership is order-independent, so the result is
// identical to NewSupportSet for every plan; sharding is purely an execution
// choice and is skipped when it cannot run in parallel.
func NewSupportSetSharded(f *Frame, rows []int, plan shard.Plan, workers int) *SupportSet {
	if plan.Shards() <= 1 || plan.Workers(workers) <= 1 {
		return NewSupportSet(f, rows)
	}
	f.Intern()
	parts := make([]*SupportSet, plan.Shards())
	_ = shard.Run(context.Background(), plan, workers, func(_, s, lo, hi int) error {
		parts[s] = NewSupportSet(f, rows[lo:hi])
		return nil
	})
	out := parts[0]
	for _, p := range parts[1:] {
		out.union(p)
	}
	return out
}

// merge folds other's cells into f. Both must be fitted over the same frame
// (same keyer), which guarantees they agree on packed vs. wide keys. For a
// key present in both, counts add exactly and sums add once per merge call,
// so folding parts in shard order yields a deterministic index.
func (f *FreqEstimator) merge(other *FreqEstimator) {
	f.global.sum += other.global.sum
	f.global.n += other.global.n
	if f.packed() {
		mergeCells(f.exact, other.exact)
		for i := f.keepFirst; i < f.dim; i++ {
			mergeCells(f.backoff[i], other.backoff[i])
		}
		mergeCells(f.firstOnly, other.firstOnly)
		return
	}
	mergeCells(f.exactW, other.exactW)
	for i := f.keepFirst; i < f.dim; i++ {
		mergeCells(f.backoffW[i], other.backoffW[i])
	}
	mergeCells(f.firstOnlyW, other.firstOnlyW)
}

// mergeCells folds src's cells into dst (adopting the cell pointer for keys
// dst has not seen; src is discarded after a merge, so sharing is safe).
// One definition serves the packed (uint64) and wide (string) key spaces so
// the merge semantics cannot drift between them.
func mergeCells[K comparable](dst, src map[K]*cell) {
	for k, c := range src {
		d := dst[k]
		if d == nil {
			dst[k] = c
			continue
		}
		d.sum += c.sum
		d.n += c.n
	}
}

// union folds other's keys into s (same-frame support sets only).
func (s *SupportSet) union(other *SupportSet) {
	if s.packed() {
		unionKeys(s.set, other.set)
		return
	}
	unionKeys(s.setW, other.setW)
}

func unionKeys[K comparable](dst, src map[K]struct{}) {
	for k := range src {
		dst[k] = struct{}{}
	}
}
