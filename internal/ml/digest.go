package ml

import (
	"fmt"
	"math"

	"hyper/internal/relation"
	"hyper/internal/shard"
)

// Incremental column statistics for append-only (MVCC) relations. The
// planner's per-column summaries (ColumnStats) are shard-mergeable in the
// same sense as the frequency estimator: counts add, distinct sets union,
// min/max/max-abs fold with order-independent maxima, and the flags OR/AND.
// A RelationDigest therefore partitions the relation with a prefix-stable
// strided plan (shard.Strided), fits one ColumnDigest per shard, and merges
// the per-shard digests in plan order. When rows are appended, only the
// final partial shard is extended and new tail shards are fitted — sealed
// shards are never re-scanned, which is what makes a session append O(new
// rows) instead of O(total rows).

// ColumnDigest is the mergeable accumulator behind one column's
// ColumnStats.
type ColumnDigest struct {
	name     string
	rows     int
	nulls    int
	distinct map[string]struct{}
	numeric  bool
	hasNaN   bool
	maxAbs   float64
	min, max float64
}

func newColumnDigest(name string) *ColumnDigest {
	return &ColumnDigest{
		name:     name,
		distinct: make(map[string]struct{}),
		numeric:  true,
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// observe accumulates one value, mirroring CollectStats's per-value step
// exactly (NaN sets the flag and skips the range fold; non-numeric kinds
// clear Numeric but still count toward the distinct set).
func (c *ColumnDigest) observe(v relation.Value) {
	c.rows++
	if v.IsNull() {
		c.nulls++
		return
	}
	c.distinct[v.Key()] = struct{}{}
	switch v.Kind() {
	case relation.KindInt, relation.KindFloat:
		f := v.AsFloat()
		if math.IsNaN(f) {
			c.hasNaN = true
			return
		}
		if a := math.Abs(f); a > c.maxAbs {
			c.maxAbs = a
		}
		if f < c.min {
			c.min = f
		}
		if f > c.max {
			c.max = f
		}
	default:
		c.numeric = false
	}
}

// merge folds other into c. All folded quantities are order-independent
// (sums, unions, maxima), so merging per-shard digests in plan order equals
// the whole-relation scan bit for bit.
func (c *ColumnDigest) merge(other *ColumnDigest) {
	c.rows += other.rows
	c.nulls += other.nulls
	for k := range other.distinct {
		c.distinct[k] = struct{}{}
	}
	c.numeric = c.numeric && other.numeric
	c.hasNaN = c.hasNaN || other.hasNaN
	if other.maxAbs > c.maxAbs {
		c.maxAbs = other.maxAbs
	}
	if other.min < c.min {
		c.min = other.min
	}
	if other.max > c.max {
		c.max = other.max
	}
}

// stats renders the digest as the planner's wire form, with the same
// end-of-scan normalizations CollectStats applies.
func (c *ColumnDigest) stats() ColumnStats {
	st := ColumnStats{
		Name: c.name, Rows: c.rows, Card: len(c.distinct),
		Numeric: c.numeric, HasNaN: c.hasNaN, MaxAbs: c.maxAbs,
		Min: c.min, Max: c.max,
	}
	if c.rows > 0 {
		st.NullFrac = float64(c.nulls) / float64(c.rows)
	}
	if st.Min > st.Max { // no numeric values seen
		st.Min, st.Max = 0, 0
	}
	return st
}

// shardDigest is the digest of one strided shard: one ColumnDigest per
// schema column, plus the row range it has absorbed so far.
type shardDigest struct {
	lo, hi int // rows [lo, hi) absorbed
	cols   []*ColumnDigest
}

// RelationDigest maintains per-shard column digests for one append-only
// relation. It is not safe for concurrent use; the serving layer serializes
// appends per session.
type RelationDigest struct {
	target int
	fitted int // rows absorbed so far (a frozen prefix of the relation)
	shards []*shardDigest
}

// NewRelationDigest returns an empty digest at the given rows-per-shard
// granularity (<= 0 uses shard.DefaultTargetRows).
func NewRelationDigest(target int) *RelationDigest {
	if target <= 0 {
		target = shard.DefaultTargetRows
	}
	return &RelationDigest{target: target}
}

// FittedRows returns how many leading rows the digest has absorbed.
func (d *RelationDigest) FittedRows() int { return d.fitted }

// Advance absorbs rel's rows beyond the already-fitted prefix into the
// strided shard plan and reports the work split: fitted counts the shards
// that scanned new rows this call (fresh tail shards plus the grown partial
// shard), reused counts the sealed shards that were left untouched. rel must
// be an extension of the relation previously advanced over — rows already
// absorbed are never re-read, so a mutated prefix would silently corrupt the
// digest (append-only growth is the caller's contract).
func (d *RelationDigest) Advance(rel *relation.Relation) (fitted, reused int) {
	n := rel.Len()
	if n < d.fitted {
		panic(fmt.Sprintf("ml: relation %s shrank from %d to %d rows under an append-only digest", rel.Name(), d.fitted, n))
	}
	plan := shard.Strided(n, d.target)
	cols := rel.Schema().Columns()
	for s := 0; s < plan.Shards(); s++ {
		lo, hi := plan.Bounds(s)
		if hi <= d.fitted {
			reused++ // sealed (or previously absorbed) shard: never re-scan
			continue
		}
		var sd *shardDigest
		if s < len(d.shards) {
			sd = d.shards[s] // the partial tail shard, growing in place
		} else {
			sd = &shardDigest{lo: lo, hi: lo, cols: make([]*ColumnDigest, len(cols))}
			for c := range cols {
				sd.cols[c] = newColumnDigest(cols[c].Name)
			}
			d.shards = append(d.shards, sd)
		}
		from := sd.hi // rows [lo, sd.hi) were absorbed in a prior call
		for i := from; i < hi; i++ {
			row := rel.Row(i)
			for c := range sd.cols {
				sd.cols[c].observe(row[c])
			}
		}
		sd.hi = hi
		fitted++
	}
	d.fitted = n
	return fitted, reused
}

// Stats merges the per-shard digests in plan order and renders the planner
// wire form. The result is identical to CollectStats over the same rows.
func (d *RelationDigest) Stats() []ColumnStats {
	if len(d.shards) == 0 {
		return []ColumnStats{}
	}
	merged := make([]*ColumnDigest, len(d.shards[0].cols))
	for c := range merged {
		merged[c] = newColumnDigest(d.shards[0].cols[c].name)
	}
	for _, sd := range d.shards {
		for c := range merged {
			merged[c].merge(sd.cols[c])
		}
	}
	out := make([]ColumnStats, len(merged))
	for c := range merged {
		out[c] = merged[c].stats()
	}
	return out
}
