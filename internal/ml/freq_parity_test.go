package ml

// Parity between the integer-keyed FreqEstimator and the formatted-string
// design it replaced: a reference implementation (the pre-columnar code,
// kept verbatim here) is fit on the same data and compared point for point,
// including protected (keepFirst) features, unseen categories (-1 codes),
// and the wide-key fallback past 64 bits of packed key space.

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"hyper/internal/stats"
)

// refFreq is the string-keyed reference estimator.
type refFreq struct {
	dim       int
	keepFirst int
	exact     map[string]*cell
	backoff   []map[string]*cell
	firstOnly map[string]*cell
	global    cell
}

func refFkey(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}

func refFitFreq(X [][]float64, y []float64, keepFirst int) *refFreq {
	dim := 0
	if len(X) > 0 {
		dim = len(X[0])
	}
	if keepFirst > dim {
		keepFirst = dim
	}
	f := &refFreq{
		dim:       dim,
		keepFirst: keepFirst,
		exact:     make(map[string]*cell, len(X)),
		backoff:   make([]map[string]*cell, dim),
		firstOnly: make(map[string]*cell),
	}
	for i := keepFirst; i < dim; i++ {
		f.backoff[i] = make(map[string]*cell)
	}
	add := func(m map[string]*cell, k string, yy float64) {
		c := m[k]
		if c == nil {
			c = &cell{}
			m[k] = c
		}
		c.sum += yy
		c.n++
	}
	kb := make([]string, dim)
	for r, x := range X {
		for i, v := range x {
			kb[i] = refFkey(v)
		}
		add(f.exact, strings.Join(kb, ","), y[r])
		for i := keepFirst; i < dim; i++ {
			save := kb[i]
			kb[i] = "*"
			add(f.backoff[i], strings.Join(kb, ","), y[r])
			kb[i] = save
		}
		if keepFirst > 0 {
			add(f.firstOnly, strings.Join(kb[:keepFirst], ","), y[r])
		}
		f.global.sum += y[r]
		f.global.n++
	}
	return f
}

func (f *refFreq) predict(x []float64) float64 {
	kb := make([]string, f.dim)
	for i, v := range x {
		kb[i] = refFkey(v)
	}
	if c, ok := f.exact[strings.Join(kb, ",")]; ok {
		return c.mean()
	}
	var sum float64
	var n int
	for i := f.keepFirst; i < f.dim; i++ {
		save := kb[i]
		kb[i] = "*"
		if c, ok := f.backoff[i][strings.Join(kb, ",")]; ok {
			sum += c.mean()
			n++
		}
		kb[i] = save
	}
	if n > 0 {
		return sum / float64(n)
	}
	if f.keepFirst > 0 {
		if c, ok := f.firstOnly[strings.Join(kb[:f.keepFirst], ",")]; ok {
			return c.mean()
		}
	}
	return f.global.mean()
}

func (f *refFreq) supportOf(x []float64) int {
	kb := make([]string, f.dim)
	for i, v := range x {
		kb[i] = refFkey(v)
	}
	if c, ok := f.exact[strings.Join(kb, ",")]; ok {
		return c.n
	}
	return 0
}

// discreteData draws n rows of dim features with the given per-column
// domain size.
func discreteData(rng *stats.RNG, n, dim, domain int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for r := range X {
		X[r] = make([]float64, dim)
		for c := range X[r] {
			X[r][c] = float64(rng.Intn(domain))
		}
		y[r] = float64(rng.Intn(5))
	}
	return X, y
}

func comparePredictions(t *testing.T, f *FreqEstimator, ref *refFreq, probes [][]float64, label string) {
	t.Helper()
	for _, x := range probes {
		got, want := f.Predict(x), ref.predict(x)
		if got != want {
			t.Fatalf("%s: Predict(%v) = %v, reference %v", label, x, got, want)
		}
		if gs, ws := f.SupportOf(x), ref.supportOf(x); gs != ws {
			t.Fatalf("%s: SupportOf(%v) = %d, reference %d", label, x, gs, ws)
		}
	}
}

// probesFor builds prediction points covering exact hits, single-feature
// misses (forcing backoff), unseen categories (the encoder's -1 code), and
// fully out-of-domain rows (global fallback).
func probesFor(rng *stats.RNG, X [][]float64, dim int) [][]float64 {
	var probes [][]float64
	for i := 0; i < 50 && i < len(X); i++ {
		probes = append(probes, X[rng.Intn(len(X))]) // seen rows
	}
	for i := 0; i < 50 && len(X) > 0; i++ {
		x := append([]float64(nil), X[rng.Intn(len(X))]...)
		x[rng.Intn(dim)] = -1 // unseen category at one position
		probes = append(probes, x)
		z := append([]float64(nil), x...)
		z[rng.Intn(dim)] = 9999 // far out of domain
		probes = append(probes, z)
	}
	allMiss := make([]float64, dim)
	for c := range allMiss {
		allMiss[c] = -7
	}
	probes = append(probes, allMiss)
	return probes
}

func TestFreqParityWithStringKeys(t *testing.T) {
	for _, tc := range []struct {
		name             string
		n, dim, domain   int
		keepFirst, seeds int
	}{
		{"packed-no-keep", 400, 4, 5, 0, 3},
		{"packed-keep-2", 400, 5, 4, 2, 3},
		{"packed-keep-all", 200, 3, 4, 3, 2},
		{"sparse-support", 80, 6, 8, 1, 3}, // most combinations unseen
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(tc.seeds); seed++ {
				rng := stats.NewRNG(seed)
				X, y := discreteData(rng, tc.n, tc.dim, tc.domain)
				f := FitFreqKeep(X, y, tc.keepFirst)
				ref := refFitFreq(X, y, tc.keepFirst)
				if f.Support() != len(ref.exact) {
					t.Fatalf("Support = %d, reference %d", f.Support(), len(ref.exact))
				}
				comparePredictions(t, f, ref, probesFor(rng, X, tc.dim), tc.name)
			}
		})
	}
}

// TestFreqParityWideKeys forces the packed-key overflow (six columns of
// ~2k distinct values each exceed 64 bits of key space) so the wide
// byte-string fallback is exercised against the reference.
func TestFreqParityWideKeys(t *testing.T) {
	rng := stats.NewRNG(42)
	X, y := discreteData(rng, 12000, 6, 2000)
	f := FitFreqKeep(X, y, 1)
	if f.packed() {
		t.Fatal("expected wide-key mode for ~2000^6 key space")
	}
	ref := refFitFreq(X, y, 1)
	if f.Support() != len(ref.exact) {
		t.Fatalf("Support = %d, reference %d", f.Support(), len(ref.exact))
	}
	comparePredictions(t, f, ref, probesFor(rng, X, 6), "wide")
}

// TestSupportSetMatchesEstimator checks the detached support index against
// the estimator's exact-match counts on hits and misses.
func TestSupportSetMatchesEstimator(t *testing.T) {
	rng := stats.NewRNG(7)
	X, y := discreteData(rng, 300, 4, 5)
	fr := FrameFromRows(X)
	rows := make([]int, len(X))
	for i := range rows {
		rows[i] = i
	}
	set := NewSupportSet(fr, rows)
	f := FitFreqFrame(fr, rows, y, 0)
	if set.Len() != f.Support() {
		t.Fatalf("SupportSet.Len = %d, estimator support %d", set.Len(), f.Support())
	}
	for _, x := range probesFor(rng, X, 4) {
		if has, n := set.Has(x), f.SupportOf(x); has != (n > 0) {
			t.Fatalf("Has(%v) = %v, SupportOf = %d", x, has, n)
		}
	}
}
