// Package ml is HypeR's from-scratch machine-learning substrate. The paper's
// implementation estimates conditional probabilities with an sklearn random
// forest regressor (Section 5, A.4); this package provides an equivalent
// CART regression tree and random forest, an exact conditional-frequency
// estimator with a non-zero-support index (the optimization of A.4), feature
// encoding from relational values, and equi-width discretization used by the
// how-to engine.
package ml

import (
	"sort"

	"hyper/internal/relation"
)

// Regressor is a fitted model mapping an encoded feature vector to a real
// prediction. Implementations must be safe for concurrent Predict calls.
type Regressor interface {
	Predict(x []float64) float64
}

// Encoder maps relational values of a fixed list of feature columns into
// dense float vectors. Numeric values pass through; strings and booleans get
// stable ordinal codes learned from the data (sorted order, so codes are
// deterministic). Unseen categories map to -1.
type Encoder struct {
	cols   []string
	codes  []map[string]float64 // nil for numeric columns
	schema *relation.Schema     // schema the column indexes were resolved on
	idxs   []int                // schema column index per feature
}

// NewEncoder learns an encoding for the given columns from all rows of rel.
func NewEncoder(rel *relation.Relation, cols []string) *Encoder {
	e := &Encoder{
		cols:   append([]string(nil), cols...),
		codes:  make([]map[string]float64, len(cols)),
		schema: rel.Schema(),
		idxs:   make([]int, len(cols)),
	}
	for ci, col := range cols {
		idx := rel.Schema().MustIndex(col)
		e.idxs[ci] = idx
		numeric := true
		distinct := make(map[string]relation.Value)
		for _, row := range rel.Rows() {
			v := row[idx]
			if v.IsNull() {
				continue
			}
			if !v.Kind().Numeric() {
				numeric = false
			}
			distinct[v.Key()] = v
		}
		if numeric {
			continue
		}
		keys := make([]string, 0, len(distinct))
		for k := range distinct {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := make(map[string]float64, len(keys))
		for i, k := range keys {
			m[k] = float64(i)
		}
		e.codes[ci] = m
	}
	return e
}

// Columns returns the encoded feature column names in order.
func (e *Encoder) Columns() []string { return append([]string(nil), e.cols...) }

// Dim returns the number of features.
func (e *Encoder) Dim() int { return len(e.cols) }

// EncodeValue encodes the value of feature i.
func (e *Encoder) EncodeValue(i int, v relation.Value) float64 {
	if e.codes[i] == nil {
		if v.IsNull() {
			return 0
		}
		if v.Kind() == relation.KindBool {
			if v.AsBool() {
				return 1
			}
			return 0
		}
		return v.AsFloat()
	}
	if c, ok := e.codes[i][v.Key()]; ok {
		return c
	}
	return -1
}

// Encode encodes one tuple of rel into a feature vector (allocating).
func (e *Encoder) Encode(rel *relation.Relation, row relation.Tuple) []float64 {
	out := make([]float64, len(e.cols))
	e.EncodeInto(rel, row, out)
	return out
}

// EncodeInto encodes one tuple into dst, which must have length Dim().
// Column positions are precomputed at construction; a relation with a
// schema other than the encoder's resolves them per call.
func (e *Encoder) EncodeInto(rel *relation.Relation, row relation.Tuple, dst []float64) {
	if rel.Schema() == e.schema {
		for i, idx := range e.idxs {
			dst[i] = e.EncodeValue(i, row[idx])
		}
		return
	}
	for i, col := range e.cols {
		dst[i] = e.EncodeValue(i, row[rel.Schema().MustIndex(col)])
	}
}

// Matrix encodes every row of rel into a feature matrix.
func (e *Encoder) Matrix(rel *relation.Relation) [][]float64 {
	idxs := make([]int, len(e.cols))
	for i, col := range e.cols {
		idxs[i] = rel.Schema().MustIndex(col)
	}
	out := make([][]float64, rel.Len())
	flat := make([]float64, rel.Len()*len(e.cols))
	for r, row := range rel.Rows() {
		vec := flat[r*len(e.cols) : (r+1)*len(e.cols)]
		for i, idx := range idxs {
			vec[i] = e.EncodeValue(i, row[idx])
		}
		out[r] = vec
	}
	return out
}
