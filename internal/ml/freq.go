package ml

import (
	"math"
	"strconv"
	"strings"
)

// FreqEstimator is the exact conditional-frequency estimator of Appendix
// A.4: it indexes the feature combinations that actually occur in the data
// ("non-zero support") and predicts the empirical conditional mean
// E[y | X=x]. Feature combinations never seen fall back first to partial
// matches via per-feature backoff, then to the global mean. It is preferred
// by the engine when the conditioning domain is small and discrete, and it
// is the reason runtime stays linear in the database size rather than
// exponential in |Dom(C)|.
type FreqEstimator struct {
	dim       int
	keepFirst int // the first keepFirst features are never wildcarded
	exact     map[string]*cell
	backoff   []map[string]*cell // backoff[i]: key with feature i wildcarded
	firstOnly map[string]*cell   // key over the first keepFirst features only
	global    cell
}

type cell struct {
	sum float64
	n   int
}

func (c *cell) mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}

// FitFreq builds the support index from (X, y).
func FitFreq(X [][]float64, y []float64) *FreqEstimator {
	return FitFreqKeep(X, y, 0)
}

// FitFreqKeep is FitFreq with the first keepFirst features protected from
// backoff. The engine places the update attributes first in the feature
// vector, and predictions are made at hypothetical values of exactly those
// features — a backoff that wildcards them would erase the update and
// silently return a no-effect answer for zero-support combinations. With
// keepFirst set, backoff generalizes only over the conditioning features.
func FitFreqKeep(X [][]float64, y []float64, keepFirst int) *FreqEstimator {
	dim := 0
	if len(X) > 0 {
		dim = len(X[0])
	}
	if keepFirst > dim {
		keepFirst = dim
	}
	f := &FreqEstimator{
		dim:       dim,
		keepFirst: keepFirst,
		exact:     make(map[string]*cell, len(X)),
		backoff:   make([]map[string]*cell, dim),
		firstOnly: make(map[string]*cell),
	}
	for i := keepFirst; i < dim; i++ {
		f.backoff[i] = make(map[string]*cell)
	}
	kb := make([]string, dim)
	for r, x := range X {
		for i, v := range x {
			kb[i] = fkey(v)
		}
		k := strings.Join(kb, ",")
		f.add(f.exact, k, y[r])
		for i := keepFirst; i < dim; i++ {
			save := kb[i]
			kb[i] = "*"
			f.add(f.backoff[i], strings.Join(kb, ","), y[r])
			kb[i] = save
		}
		if keepFirst > 0 {
			f.add(f.firstOnly, strings.Join(kb[:keepFirst], ","), y[r])
		}
		f.global.sum += y[r]
		f.global.n++
	}
	return f
}

func (f *FreqEstimator) add(m map[string]*cell, k string, y float64) {
	c := m[k]
	if c == nil {
		c = &cell{}
		m[k] = c
	}
	c.sum += y
	c.n++
}

func fkey(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}

// Predict returns the empirical conditional mean for x, backing off in
// order: exact match, single-feature wildcards over the non-protected
// features, the protected-features-only marginal, and finally the global
// mean.
func (f *FreqEstimator) Predict(x []float64) float64 {
	kb := make([]string, f.dim)
	for i, v := range x {
		kb[i] = fkey(v)
	}
	k := strings.Join(kb, ",")
	if c, ok := f.exact[k]; ok {
		return c.mean()
	}
	var sum float64
	var n int
	for i := f.keepFirst; i < f.dim; i++ {
		save := kb[i]
		kb[i] = "*"
		if c, ok := f.backoff[i][strings.Join(kb, ",")]; ok {
			sum += c.mean()
			n++
		}
		kb[i] = save
	}
	if n > 0 {
		return sum / float64(n)
	}
	if f.keepFirst > 0 {
		if c, ok := f.firstOnly[strings.Join(kb[:f.keepFirst], ",")]; ok {
			return c.mean()
		}
	}
	return f.global.mean()
}

// Support returns the number of distinct feature combinations observed; the
// engine uses it to decide between the frequency estimator and a forest.
func (f *FreqEstimator) Support() int { return len(f.exact) }

// SupportOf returns the number of training rows exactly matching x.
func (f *FreqEstimator) SupportOf(x []float64) int {
	kb := make([]string, f.dim)
	for i, v := range x {
		kb[i] = fkey(v)
	}
	if c, ok := f.exact[strings.Join(kb, ",")]; ok {
		return c.n
	}
	return 0
}
