package ml

// FreqEstimator is the exact conditional-frequency estimator of Appendix
// A.4: it indexes the feature combinations that actually occur in the data
// ("non-zero support") and predicts the empirical conditional mean
// E[y | X=x]. Feature combinations never seen fall back first to partial
// matches via per-feature backoff, then to the global mean. It is preferred
// by the engine when the conditioning domain is small and discrete, and it
// is the reason runtime stays linear in the database size rather than
// exponential in |Dom(C)|.
//
// Keys are packed integer codes, not formatted strings: each feature value
// is interned to a small per-column code by the training frame, and a full
// combination radix-packs into one uint64 (with a byte-string fallback when
// the column cardinalities overflow 64 bits — see keyer). Backoff keys are
// O(1) digit substitutions of the exact key, so fitting costs O(dim) per
// row instead of the O(dim²) string joins of the formatted-key design.
// Grouping is by exact float64 value (canonical bits): the engine only
// selects this estimator for discrete features, where that matches the
// historical 12-significant-digit string keys; forcing it onto continuous
// features no longer merges values that agreed only after 'g'-12 rounding.
type FreqEstimator struct {
	keyer
	keepFirst int // the first keepFirst features are never wildcarded

	// Packed-key index (stride != nil).
	exact     map[uint64]*cell
	backoff   []map[uint64]*cell // backoff[i]: key with feature i wildcarded
	firstOnly map[uint64]*cell   // key over the first keepFirst features only

	// Wide-key index (collision-safe fallback past 64 bits).
	exactW     map[string]*cell
	backoffW   []map[string]*cell
	firstOnlyW map[string]*cell

	global cell
}

type cell struct {
	sum float64
	n   int
}

func (c *cell) mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}

// FitFreq builds the support index from (X, y).
func FitFreq(X [][]float64, y []float64) *FreqEstimator {
	return FitFreqKeep(X, y, 0)
}

// FitFreqKeep is FitFreq with the first keepFirst features protected from
// backoff. The engine places the update attributes first in the feature
// vector, and predictions are made at hypothetical values of exactly those
// features — a backoff that wildcards them would erase the update and
// silently return a no-effect answer for zero-support combinations. With
// keepFirst set, backoff generalizes only over the conditioning features.
func FitFreqKeep(X [][]float64, y []float64, keepFirst int) *FreqEstimator {
	f := FrameFromRows(X)
	rows := make([]int, len(X))
	for i := range rows {
		rows[i] = i
	}
	return FitFreqFrame(f, rows, y, keepFirst)
}

// FitFreqFrame builds the support index from the frame rows selected by
// rows; y is parallel to rows. The frame's interned codes are reused
// directly, so fitting does no value hashing at all.
func FitFreqFrame(fr *Frame, rows []int, y []float64, keepFirst int) *FreqEstimator {
	fr.Intern()
	dim := fr.dim
	if keepFirst > dim {
		keepFirst = dim
	}
	f := &FreqEstimator{keyer: newKeyer(fr), keepFirst: keepFirst}
	if f.packed() {
		f.fitPacked(fr, rows, y)
	} else {
		f.fitWide(fr, rows, y)
	}
	for _, yy := range y {
		f.global.sum += yy
		f.global.n++
	}
	return f
}

func (f *FreqEstimator) fitPacked(fr *Frame, rows []int, y []float64) {
	f.exact = make(map[uint64]*cell, len(rows))
	f.backoff = make([]map[uint64]*cell, f.dim)
	for i := f.keepFirst; i < f.dim; i++ {
		f.backoff[i] = make(map[uint64]*cell)
	}
	f.firstOnly = make(map[uint64]*cell)
	codes := make([]uint32, f.dim)
	for ri, r := range rows {
		for c := 0; c < f.dim; c++ {
			codes[c] = fr.codes[c*fr.rows+r]
		}
		key := f.packKey(codes)
		addCell(f.exact, key, y[ri])
		for i := f.keepFirst; i < f.dim; i++ {
			addCell(f.backoff[i], f.wildcardAt(key, codes, i), y[ri])
		}
		if f.keepFirst > 0 {
			addCell(f.firstOnly, f.packPrefix(codes, f.keepFirst), y[ri])
		}
	}
}

func (f *FreqEstimator) fitWide(fr *Frame, rows []int, y []float64) {
	f.exactW = make(map[string]*cell, len(rows))
	f.backoffW = make([]map[string]*cell, f.dim)
	for i := f.keepFirst; i < f.dim; i++ {
		f.backoffW[i] = make(map[string]*cell)
	}
	f.firstOnlyW = make(map[string]*cell)
	codes := make([]uint32, f.dim)
	buf := make([]byte, 0, 4*f.dim)
	for ri, r := range rows {
		for c := 0; c < f.dim; c++ {
			codes[c] = fr.codes[c*fr.rows+r]
		}
		buf = wideKey(buf, codes, f.dim)
		addCellW(f.exactW, buf, y[ri])
		for i := f.keepFirst; i < f.dim; i++ {
			wideWildcardAt(buf, i)
			addCellW(f.backoffW[i], buf, y[ri])
			wideRestoreAt(buf, codes, i)
		}
		if f.keepFirst > 0 {
			addCellW(f.firstOnlyW, buf[:4*f.keepFirst], y[ri])
		}
	}
}

func addCell(m map[uint64]*cell, k uint64, y float64) {
	c := m[k]
	if c == nil {
		c = &cell{}
		m[k] = c
	}
	c.sum += y
	c.n++
}

func addCellW(m map[string]*cell, k []byte, y float64) {
	c := m[string(k)] // no allocation: compiler-optimized byte-slice lookup
	if c == nil {
		c = &cell{}
		m[string(k)] = c
	}
	c.sum += y
	c.n++
}

// Predict returns the empirical conditional mean for x, backing off in
// order: exact match, single-feature wildcards over the non-protected
// features, the protected-features-only marginal, and finally the global
// mean. It is allocation-free for feature counts up to 16.
func (f *FreqEstimator) Predict(x []float64) float64 {
	var stack [16]uint32
	codes := f.encodeScratch(x, &stack)
	if f.packed() {
		return f.predictPacked(codes)
	}
	return f.predictWide(codes)
}

func (f *FreqEstimator) predictPacked(codes []uint32) float64 {
	key := f.packKey(codes)
	if c, ok := f.exact[key]; ok {
		return c.mean()
	}
	var sum float64
	var n int
	for i := f.keepFirst; i < f.dim; i++ {
		if c, ok := f.backoff[i][f.wildcardAt(key, codes, i)]; ok {
			sum += c.mean()
			n++
		}
	}
	if n > 0 {
		return sum / float64(n)
	}
	if f.keepFirst > 0 {
		if c, ok := f.firstOnly[f.packPrefix(codes, f.keepFirst)]; ok {
			return c.mean()
		}
	}
	return f.global.mean()
}

func (f *FreqEstimator) predictWide(codes []uint32) float64 {
	var bstack [64]byte
	buf := wideKey(bstack[:0], codes, f.dim)
	if c, ok := f.exactW[string(buf)]; ok {
		return c.mean()
	}
	var sum float64
	var n int
	for i := f.keepFirst; i < f.dim; i++ {
		wideWildcardAt(buf, i)
		if c, ok := f.backoffW[i][string(buf)]; ok {
			sum += c.mean()
			n++
		}
		wideRestoreAt(buf, codes, i)
	}
	if n > 0 {
		return sum / float64(n)
	}
	if f.keepFirst > 0 {
		if c, ok := f.firstOnlyW[string(buf[:4*f.keepFirst])]; ok {
			return c.mean()
		}
	}
	return f.global.mean()
}

// Support returns the number of distinct feature combinations observed; the
// engine uses it to decide between the frequency estimator and a forest.
func (f *FreqEstimator) Support() int {
	if f.packed() {
		return len(f.exact)
	}
	return len(f.exactW)
}

// SupportOf returns the number of training rows exactly matching x.
func (f *FreqEstimator) SupportOf(x []float64) int {
	var stack [16]uint32
	codes := f.encodeScratch(x, &stack)
	if f.packed() {
		if c, ok := f.exact[f.packKey(codes)]; ok {
			return c.n
		}
		return 0
	}
	var bstack [64]byte
	buf := wideKey(bstack[:0], codes, f.dim)
	if c, ok := f.exactW[string(buf)]; ok {
		return c.n
	}
	return 0
}
