package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state or the timeout
// passes, returning the final snapshot.
func waitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if s.State.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := m.Get(id)
	t.Fatalf("job %s never terminated (state %s)", id, s.State)
	return Snapshot{}
}

func TestJobRunsToCompletion(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Drain(context.Background())
	j, err := m.Submit(SubmitOptions{Session: "s", Kind: "test"}, func(ctx context.Context, p *Progress) (any, error) {
		p.Report("steps", 3, 3)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateDone || s.Result != 42 || s.Err != nil {
		t.Fatalf("snapshot = %+v, want done/42", s)
	}
	if s.Stage != "steps" || s.Done != 3 || s.Total != 3 {
		t.Errorf("progress = %s %d/%d, want steps 3/3", s.Stage, s.Done, s.Total)
	}
	if s.Started.IsZero() || s.Finished.IsZero() || s.Finished.Before(s.Started) {
		t.Errorf("timestamps inconsistent: %+v", s)
	}
	st := m.Stats()
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}

func TestJobFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	boom := errors.New("boom")
	j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		return nil, boom
	})
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateFailed || !errors.Is(s.Err, boom) {
		t.Fatalf("snapshot = %+v, want failed/boom", s)
	}
	jp, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		panic("kaboom")
	})
	s = waitTerminal(t, m, jp.ID(), 5*time.Second)
	if s.State != StateFailed || s.Err == nil {
		t.Fatalf("panicking runner: snapshot = %+v, want failed", s)
	}
	if m.Stats().Failed != 2 {
		t.Errorf("failed = %d, want 2", m.Stats().Failed)
	}
}

// TestPriorityOrder pins the scheduling order: with one busy worker, queued
// jobs run highest priority first, FIFO within a priority.
func TestPriorityOrder(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{})
	m.Submit(SubmitOptions{Kind: "blocker"}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started // the worker is now busy; everything below queues

	var mu sync.Mutex
	var order []string
	mk := func(name string, prio int) {
		m.Submit(SubmitOptions{Kind: name, Priority: prio}, func(ctx context.Context, p *Progress) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		})
	}
	mk("low-a", 0)
	mk("high", 5)
	mk("low-b", 0)
	mk("mid", 3)
	close(gate)

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d jobs ran", n)
		}
		time.Sleep(time.Millisecond)
	}
	want := []string{"high", "mid", "low-a", "low-b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueFullAndSessionLimitRejection(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 3, PerSessionLimit: 2})
	defer m.Drain(context.Background())

	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	block := func(ctx context.Context, p *Progress) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		return nil, nil
	}
	// One running (session a) + two queued leaves one queue slot free.
	if _, err := m.Submit(SubmitOptions{Session: "a"}, block); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(SubmitOptions{Session: "b"}, block); err != nil {
		t.Fatal(err)
	}
	// Session a already has 2 live jobs: per-session limit fires even though
	// the queue has room.
	if _, err := m.Submit(SubmitOptions{Session: "a"}, block); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(SubmitOptions{Session: "a"}, block); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("err = %v, want ErrSessionLimit", err)
	}
	// Fill the last slot; the queue (3 deep) is then full regardless of
	// session.
	if _, err := m.Submit(SubmitOptions{Session: "b"}, block); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(SubmitOptions{Session: "c"}, block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := m.Stats().Rejected; got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	gate := make(chan struct{})
	started := make(chan struct{})
	m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	ran := false
	j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		ran = true
		return nil, nil
	})
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	s, _ := m.Get(j.ID())
	if s.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", s.State)
	}
	close(gate)
	// The worker must skip the cancelled job, not run it.
	time.Sleep(20 * time.Millisecond)
	if ran {
		t.Error("cancelled queued job still ran")
	}
	if m.Stats().Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", m.Stats().Cancelled)
	}
}

// TestCancelQueuedJobFreesQueueSlot pins that cancelling queued jobs frees
// their admission slots immediately — a full queue whose jobs were all
// cancelled must accept new submissions without waiting for a worker to
// pop the stale entries.
func TestCancelQueuedJobFreesQueueSlot(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 2})
	defer m.Drain(context.Background())
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	if _, err := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got err = %v", err)
	}
	for _, j := range queued {
		m.Cancel(j.ID())
	}
	// The worker is still blocked, but both queue slots must be free now.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil }); err != nil {
			t.Fatalf("submit %d after cancelling queued jobs: %v", i, err)
		}
	}
	if got := m.Stats().Queued; got != 2 {
		t.Errorf("queued = %d, want 2", got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	started := make(chan struct{})
	j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateCancelled || !errors.Is(s.Err, context.Canceled) {
		t.Fatalf("snapshot = %+v, want cancelled", s)
	}
	// Cancelling a terminal job is a harmless no-op.
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Error("cancel of terminal job should still find it")
	}
	if got, _ := m.Get(j.ID()); got.State != StateCancelled {
		t.Errorf("state changed to %s after second cancel", got.State)
	}
}

// TestCancelWinsOverResult pins that a cancel requested while running makes
// the job cancelled even if the runner returns a result instead of ctx.Err.
func TestCancelWinsOverResult(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	started := make(chan struct{})
	j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return "ignored", nil // sloppy runner swallows the cancel
	})
	<-started
	m.Cancel(j.ID())
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateCancelled || s.Result != nil {
		t.Fatalf("snapshot = %+v, want cancelled with no result", s)
	}
}

func TestDeadlineExpiresRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	j, _ := m.Submit(SubmitOptions{Deadline: time.Now().Add(20 * time.Millisecond)}, func(ctx context.Context, p *Progress) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateExpired || !errors.Is(s.Err, context.DeadlineExceeded) {
		t.Fatalf("snapshot = %+v, want expired", s)
	}
}

func TestDeadlineExpiresQueuedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	gate := make(chan struct{})
	started := make(chan struct{})
	m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	j, _ := m.Submit(SubmitOptions{Deadline: time.Now().Add(10 * time.Millisecond)}, func(ctx context.Context, p *Progress) (any, error) {
		return "should not run", nil
	})
	time.Sleep(30 * time.Millisecond)
	close(gate)
	s := waitTerminal(t, m, j.ID(), 5*time.Second)
	if s.State != StateExpired {
		t.Fatalf("state = %s, want expired (deadline passed in queue)", s.State)
	}
}

func TestListAndFilter(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	gate := make(chan struct{})
	started := make(chan struct{})
	m.Submit(SubmitOptions{Session: "a", Kind: "k1"}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	m.Submit(SubmitOptions{Session: "b", Kind: "k2"}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil })

	all := m.List("", 0, false)
	if len(all) != 2 {
		t.Fatalf("list all = %d, want 2", len(all))
	}
	onlyB := m.List("b", 0, false)
	if len(onlyB) != 1 || onlyB[0].Session != "b" {
		t.Fatalf("list b = %+v", onlyB)
	}
	queued := m.List("", StateQueued, true)
	if len(queued) != 1 || queued[0].Session != "b" {
		t.Fatalf("list queued = %+v", queued)
	}
	close(gate)
}

func TestDrainCancelsQueuedAndWaitsForRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	finished := make(chan struct{})
	running, _ := m.Submit(SubmitOptions{Kind: "running"}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		close(finished)
		return "ok", nil
	})
	<-started
	queued, _ := m.Submit(SubmitOptions{Kind: "queued"}, func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-finished:
	default:
		t.Error("drain returned before the running job finished")
	}
	if s, _ := m.Get(running.ID()); s.State != StateDone {
		t.Errorf("running job state = %s, want done", s.State)
	}
	if s, _ := m.Get(queued.ID()); s.State != StateCancelled {
		t.Errorf("queued job state = %s, want cancelled", s.State)
	}
	// Post-drain submissions are rejected.
	if _, err := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainTimeoutCancelsRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done() // only stops when drained forcibly
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forced drain took %s", elapsed)
	}
	if s, _ := m.Get(j.ID()); s.State != StateCancelled {
		t.Errorf("state = %s, want cancelled after forced drain", s.State)
	}
}

func TestRetentionEvictsOldTerminalJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, Retention: 3})
	defer m.Drain(context.Background())
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
		waitTerminal(t, m, j.ID(), 5*time.Second)
	}
	for i, id := range ids {
		_, ok := m.Get(id)
		if want := i >= 3; ok != want {
			t.Errorf("job %s (index %d) retained = %v, want %v", id, i, ok, want)
		}
	}
}

func TestWaitQuantiles(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	for i := 0; i < 5; i++ {
		j, _ := m.Submit(SubmitOptions{}, func(ctx context.Context, p *Progress) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
		waitTerminal(t, m, j.ID(), 5*time.Second)
	}
	st := m.Stats()
	if st.P50WaitMs < 0 || st.P95WaitMs < st.P50WaitMs {
		t.Errorf("wait quantiles inconsistent: %+v", st)
	}
	if st.Completed != 5 {
		t.Errorf("completed = %d, want 5", st.Completed)
	}
}

func TestCancelSession(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Drain(context.Background())
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	m.Submit(SubmitOptions{Session: "x"}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	q, _ := m.Submit(SubmitOptions{Session: "x"}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil })
	other, _ := m.Submit(SubmitOptions{Session: "y"}, func(ctx context.Context, p *Progress) (any, error) { return nil, nil })
	if n := m.CancelSession("x"); n != 2 {
		t.Fatalf("cancelled %d jobs, want 2", n)
	}
	if s, _ := m.Get(q.ID()); s.State != StateCancelled {
		t.Errorf("queued x job state = %s, want cancelled", s.State)
	}
	s := waitTerminal(t, m, other.ID(), 5*time.Second)
	if s.State != StateDone {
		t.Errorf("session y job state = %s, want done", s.State)
	}
}

func TestJobIDsAreUniqueAndStatsConsistent(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	defer m.Drain(context.Background())
	const n = 50
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(SubmitOptions{Session: fmt.Sprintf("s%d", i%3)}, func(ctx context.Context, p *Progress) (any, error) {
				return i, nil
			})
			if err != nil {
				return // queue-full rejections are fine under load
			}
			mu.Lock()
			if seen[j.ID()] {
				t.Errorf("duplicate job id %s", j.ID())
			}
			seen[j.ID()] = true
			mu.Unlock()
			<-j.Done()
		}(i)
	}
	wg.Wait()
	st := m.Stats()
	if int(st.Completed+st.Rejected) != n {
		t.Errorf("completed(%d) + rejected(%d) != %d", st.Completed, st.Rejected, n)
	}
}
