// Package jobs is HypeR's asynchronous query-job subsystem: expensive
// queries (how-to solves, large what-ifs, batches) are submitted as tracked
// jobs with an ID, a priority, an optional deadline, cancellation, and
// progress counters, instead of blocking an HTTP handler for their whole
// runtime. A Manager owns a bounded priority queue and a fixed worker pool;
// admission control rejects submissions when the queue is full (the serving
// layer maps that to HTTP 429), and a per-session concurrency limit keeps
// one tenant from monopolizing the pool.
//
// Lifecycle: a job is queued -> running -> done | failed | cancelled |
// expired. Cancellation and deadlines are delivered through the
// context.Context handed to the job's Runner; the compute stack (engine
// tuple evaluation, how-to candidate scoring, IP branch and bound) observes
// that context mid-solve, so a cancelled job stops burning cores promptly
// rather than running to completion with its result discarded.
package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hyper/internal/obs"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states. Queued and Running are live; the rest are terminal.
const (
	StateQueued State = iota
	StateRunning
	StateDone      // runner returned a result
	StateFailed    // runner returned an error
	StateCancelled // cancelled while queued or running
	StateExpired   // deadline passed while queued or running
)

// String names the state in wire form.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s != StateQueued && s != StateRunning }

// Admission errors, returned by Submit and mapped to HTTP statuses by the
// serving layer.
var (
	// ErrQueueFull means the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrSessionLimit means the submitting session already has its maximum
	// number of live jobs (HTTP 429).
	ErrSessionLimit = errors.New("jobs: per-session job limit reached")
	// ErrDraining means the manager is shutting down and admits nothing
	// (HTTP 503).
	ErrDraining = errors.New("jobs: manager is draining")
)

// Progress carries a job's observable progress counters; the compute stack
// reports into it through the progress callback the serving layer wires up,
// and pollers read a consistent snapshot. The primary stage ("tuples",
// "candidates", "combos", "queries") tracks work units; the engine's
// sharded evaluation path additionally reports the dedicated "shards" stage
// (completed shards of the current plan), which is kept alongside — not in
// place of — the primary counters, so pollers see both how many tuples are
// done and how far the shard fan-out has progressed.
type Progress struct {
	mu          sync.Mutex
	stage       string
	done        int64
	total       int64
	shardsDone  int64
	shardsTotal int64
}

// Report replaces the progress counters (stage is e.g. "candidates" or
// "tuples"; total <= 0 means unknown). The "shards" stage updates the
// per-shard counters without disturbing the primary stage.
func (p *Progress) Report(stage string, done, total int) {
	p.mu.Lock()
	if stage == "shards" {
		p.shardsDone, p.shardsTotal = int64(done), int64(total)
	} else {
		p.stage, p.done, p.total = stage, int64(done), int64(total)
	}
	p.mu.Unlock()
}

// Snapshot returns the current primary stage and counters.
func (p *Progress) Snapshot() (stage string, done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stage, p.done, p.total
}

// ShardSnapshot returns the shard-stage counters (0, 0 until the engine
// reports from a sharded evaluation).
func (p *Progress) ShardSnapshot() (done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shardsDone, p.shardsTotal
}

// Runner executes a job's work. It must honor ctx: when the job is
// cancelled or its deadline passes, ctx is cancelled and the runner should
// return promptly (typically with ctx.Err()). progress is never nil.
type Runner func(ctx context.Context, progress *Progress) (any, error)

// Job is one tracked unit of work. All mutable fields are guarded by the
// manager's lock; accessors return snapshots.
type Job struct {
	id       string
	session  string
	kind     string
	priority int
	deadline time.Time // zero = none
	// dataVersion is the MVCC snapshot version the job was pinned to at
	// submission (0 when the session is unversioned); the runner closure
	// carries the actual pinned handle, this field only surfaces it.
	dataVersion int64
	runner      Runner
	progress    Progress

	seq       uint64
	submitted time.Time

	// Guarded by the owning manager's mu.
	state     State
	traceID   string // set when the job starts, if the manager traces
	started   time.Time
	finished  time.Time
	result    any
	err       error
	cancelled bool // cancel requested (distinguishes cancel from deadline)
	cancelRun context.CancelFunc
	ctx       context.Context // set when the job starts running
	heapIdx   int             // index in the queued heap, -1 once popped

	done chan struct{} // closed on terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Session returns the session the job was submitted against.
func (j *Job) Session() string { return j.session }

// Kind returns the caller-supplied kind label.
func (j *Job) Kind() string { return j.kind }

// Progress returns the job's progress counters (live; safe to read while
// the job runs).
func (j *Job) Progress() *Progress { return &j.progress }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID       string
	Session  string
	Kind     string
	Priority int
	Deadline time.Time // zero = none
	// DataVersion is the MVCC snapshot version pinned at submission
	// (0 = unversioned session).
	DataVersion int64
	State       State

	Submitted time.Time
	Started   time.Time // zero until running
	Finished  time.Time // zero until terminal

	Stage       string
	Done, Total int64
	// ShardsDone/ShardsTotal track the engine's shard fan-out within the
	// current evaluation (zero until a sharded stage reports).
	ShardsDone, ShardsTotal int64
	// TraceID names the job's execution trace ("" until it starts, or when
	// the manager does not trace).
	TraceID string

	Result any
	Err    error
}

// Wait returns how long the job waited in the queue (so far, if still
// queued).
func (s Snapshot) Wait() time.Duration {
	switch {
	case !s.Started.IsZero():
		return s.Started.Sub(s.Submitted)
	case s.State == StateQueued:
		return time.Since(s.Submitted)
	case !s.Finished.IsZero():
		// Terminal without running (cancelled/expired in queue).
		return s.Finished.Sub(s.Submitted)
	default:
		return 0
	}
}

// Run returns how long the job has been (or was) running.
func (s Snapshot) Run() time.Duration {
	if s.Started.IsZero() {
		return 0
	}
	if s.Finished.IsZero() {
		return time.Since(s.Started)
	}
	return s.Finished.Sub(s.Started)
}

// Config tunes a Manager; the zero value is usable.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions past it fail with ErrQueueFull (default 64).
	QueueDepth int
	// PerSessionLimit caps one session's live (queued + running) jobs;
	// 0 means no limit.
	PerSessionLimit int
	// Retention is how many terminal jobs are kept for polling before the
	// oldest are forgotten (default 256).
	Retention int
	// Trace, when non-nil, receives one trace per executed job: a
	// queue_wait span (submitted -> started) and a run span carrying the
	// runner's own span tree. The trace id is surfaced in job snapshots so
	// a polling client can fetch the tree from /v1/traces/{id}.
	Trace *obs.Recorder
	// Usage, when non-nil, receives the cost meter of every executed job
	// after its runner returns. The meter rides the runner's context, so
	// engine/how-to/IP charges accumulate exactly as they do for
	// synchronous queries; the serving layer folds the vector into its
	// usage table under the job's query shape.
	Usage func(kind string, m *obs.Meter, elapsed time.Duration, err error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	return c
}

// Stats is a point-in-time snapshot of the manager's gauges and counters.
type Stats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`

	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"expired"`
	Rejected  uint64 `json:"rejected"`

	// P50WaitMs / P95WaitMs are queue-wait quantiles over a bounded window
	// of recently started jobs.
	P50WaitMs float64 `json:"p50_wait_ms"`
	P95WaitMs float64 `json:"p95_wait_ms"`
}

// waitWindow bounds the queue-wait samples kept for quantile estimation.
const waitWindow = 1024

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobHeap
	byID      map[string]*Job
	terminal  []string // terminal job ids, oldest first, for retention
	perSess   map[string]int
	seq       uint64
	running   int
	draining  bool
	stopped   bool
	idle      chan struct{} // closed when draining and running == 0
	waitRing  []time.Duration
	waitNext  int
	completed uint64
	failed    uint64
	cancelled uint64
	expired   uint64
	rejected  uint64

	wg sync.WaitGroup
}

// NewManager starts a manager with cfg.Workers worker goroutines.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg.withDefaults(),
		byID:    make(map[string]*Job),
		perSess: make(map[string]int),
		idle:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// SubmitOptions parameterizes one submission.
type SubmitOptions struct {
	// Session scopes the per-session limit and list filtering.
	Session string
	// Kind is an opaque label ("whatif", "howto", ...) surfaced in listings.
	Kind string
	// Priority orders the queue: higher runs first; equal priorities run in
	// submission order.
	Priority int
	// Deadline, when non-zero, expires the job (queued or running) at that
	// time; the running context carries it.
	Deadline time.Time
	// DataVersion records the MVCC snapshot version the submitter resolved
	// and pinned for the job's runner (0 for unversioned sessions). Appends
	// after submission never change what a queued job computes over.
	DataVersion int64
}

// Submit enqueues a job. It fails fast with ErrQueueFull, ErrSessionLimit,
// or ErrDraining; admission rejections are counted in Stats.Rejected.
func (m *Manager) Submit(opts SubmitOptions, run Runner) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.stopped {
		m.rejected++
		return nil, ErrDraining
	}
	if m.queue.Len() >= m.cfg.QueueDepth {
		m.rejected++
		return nil, ErrQueueFull
	}
	if m.cfg.PerSessionLimit > 0 && m.perSess[opts.Session] >= m.cfg.PerSessionLimit {
		m.rejected++
		return nil, ErrSessionLimit
	}
	m.seq++
	j := &Job{
		id:          fmt.Sprintf("j%d", m.seq),
		session:     opts.Session,
		kind:        opts.Kind,
		priority:    opts.Priority,
		deadline:    opts.Deadline,
		dataVersion: opts.DataVersion,
		runner:      run,
		seq:         m.seq,
		submitted:   time.Now(),
		state:       StateQueued,
		done:        make(chan struct{}),
	}
	m.byID[j.id] = j
	m.perSess[j.session]++
	heap.Push(&m.queue, j)
	m.cond.Signal()
	return j, nil
}

// worker pulls the highest-priority runnable job and executes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.run(j)
	}
}

// next blocks until a queued job is available (skipping jobs that went
// terminal while queued and expiring stale deadlines), or returns nil when
// the manager stops.
func (m *Manager) next() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for m.queue.Len() == 0 && !m.stopped {
			m.cond.Wait()
		}
		if m.queue.Len() == 0 && m.stopped {
			return nil
		}
		j := heap.Pop(&m.queue).(*Job)
		if j.state != StateQueued {
			continue // cancelled while queued
		}
		if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
			m.finishLocked(j, nil, context.DeadlineExceeded, StateExpired)
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		m.recordWaitLocked(j.started.Sub(j.submitted))
		ctx := context.Background()
		var cancel context.CancelFunc
		if !j.deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, j.deadline)
		} else {
			ctx, cancel = context.WithCancel(ctx)
		}
		j.cancelRun = cancel
		j.ctx = ctx
		m.running++
		return j
	}
}

// run executes a job's runner and records its terminal state.
func (m *Manager) run(j *Job) {
	runCtx := j.ctx
	var tr *obs.Trace
	var rsp *obs.Span
	if m.cfg.Trace != nil {
		tr = obs.NewTrace("job:" + j.kind)
		tr.Root().Set("job_id", j.id)
		tr.Root().Set("session", j.session)
		wait := tr.Root().ChildAt("queue_wait", j.submitted)
		wait.EndAt(j.started)
		runCtx, rsp = obs.Start(tr.Context(j.ctx), "run")
		m.mu.Lock()
		j.traceID = tr.ID
		m.mu.Unlock()
	}
	var meter *obs.Meter
	if m.cfg.Usage != nil {
		meter = obs.NewMeter()
		runCtx = obs.ContextWithMeter(runCtx, meter)
	}
	res, err := func() (res any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("jobs: runner panicked: %v", r)
			}
		}()
		return j.runner(runCtx, &j.progress)
	}()
	j.cancelRun()
	if tr != nil {
		rsp.Set("error", err != nil)
		rsp.End()
		tr.Finish()
		m.cfg.Trace.Record(tr)
	}
	if meter != nil {
		m.cfg.Usage(j.kind, meter, time.Since(j.started), err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	state := StateDone
	switch {
	case j.cancelled:
		// A requested cancel wins regardless of what the runner returned.
		state, res, err = StateCancelled, nil, context.Canceled
	case errors.Is(err, context.DeadlineExceeded), errors.Is(j.ctx.Err(), context.DeadlineExceeded):
		state, res = StateExpired, nil
		if err == nil {
			err = context.DeadlineExceeded
		}
	case err != nil:
		state, res = StateFailed, nil
	}
	m.finishLocked(j, res, err, state)
	if m.draining && m.running == 0 {
		close(m.idle)
	}
}

// finishLocked moves a live job to a terminal state. Caller holds m.mu.
func (m *Manager) finishLocked(j *Job, res any, err error, state State) {
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	// Release the runner closure and context: retained terminal jobs must
	// not pin the session (database, cache) their runner captured.
	j.runner = nil
	j.cancelRun = nil
	j.ctx = nil
	m.perSess[j.session]--
	if m.perSess[j.session] <= 0 {
		delete(m.perSess, j.session)
	}
	switch state {
	case StateDone:
		m.completed++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	case StateExpired:
		m.expired++
	}
	m.terminal = append(m.terminal, j.id)
	for len(m.terminal) > m.cfg.Retention {
		old := m.terminal[0]
		m.terminal = m.terminal[1:]
		delete(m.byID, old)
	}
	close(j.done)
}

// Cancel requests cancellation of a job. A queued job goes terminal
// immediately; a running job has its context cancelled and goes terminal
// when its runner returns. Cancelling a terminal job is a no-op. The second
// return is false when no job with that id exists.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	m.cancelLocked(j)
	return j, true
}

func (m *Manager) cancelLocked(j *Job) {
	switch j.state {
	case StateQueued:
		// Remove from the heap now so the slot frees up for admission
		// control immediately — a cancelled job must not count toward
		// QueueDepth until a worker happens to pop it.
		if j.heapIdx >= 0 {
			heap.Remove(&m.queue, j.heapIdx)
		}
		j.cancelled = true
		m.finishLocked(j, nil, context.Canceled, StateCancelled)
	case StateRunning:
		if !j.cancelled {
			j.cancelled = true
			j.cancelRun()
		}
	}
}

// CancelSession cancels every live job of a session (used when the session
// is deleted); it returns how many jobs were signalled.
func (m *Manager) CancelSession(session string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.byID {
		if j.session == session && !j.state.Terminal() {
			m.cancelLocked(j)
			n++
		}
	}
	return n
}

// Get returns a snapshot of the job with the given id.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// List returns snapshots of every known job (live and retained terminal),
// filtered by session and/or state when non-empty, newest submission first.
func (m *Manager) List(session string, state State, filterState bool) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.byID))
	for _, j := range m.byID {
		if session != "" && j.session != session {
			continue
		}
		if filterState && j.state != state {
			continue
		}
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.After(out[k].Submitted) })
	return out
}

func (m *Manager) snapshotLocked(j *Job) Snapshot {
	stage, done, total := j.progress.Snapshot()
	shardsDone, shardsTotal := j.progress.ShardSnapshot()
	return Snapshot{
		ID:          j.id,
		Session:     j.session,
		Kind:        j.kind,
		Priority:    j.priority,
		Deadline:    j.deadline,
		DataVersion: j.dataVersion,
		State:       j.state,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
		Stage:       stage,
		Done:        done,
		Total:       total,
		ShardsDone:  shardsDone,
		ShardsTotal: shardsTotal,
		TraceID:     j.traceID,
		Result:      j.result,
		Err:         j.err,
	}
}

// Stats returns the manager's gauges, counters and wait quantiles.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	queued := 0
	for _, j := range m.queue {
		if j.state == StateQueued {
			queued++
		}
	}
	p50, p95 := waitQuantilesLocked(m.waitRing)
	return Stats{
		Queued:    queued,
		Running:   m.running,
		Completed: m.completed,
		Failed:    m.failed,
		Cancelled: m.cancelled,
		Expired:   m.expired,
		Rejected:  m.rejected,
		P50WaitMs: float64(p50) / float64(time.Millisecond),
		P95WaitMs: float64(p95) / float64(time.Millisecond),
	}
}

func (m *Manager) recordWaitLocked(d time.Duration) {
	if len(m.waitRing) < waitWindow {
		m.waitRing = append(m.waitRing, d)
		return
	}
	m.waitRing[m.waitNext] = d
	m.waitNext = (m.waitNext + 1) % waitWindow
}

func waitQuantilesLocked(ring []time.Duration) (p50, p95 time.Duration) {
	if len(ring) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ring...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration { return sorted[int(q*float64(len(sorted)-1))] }
	return at(0.50), at(0.95)
}

// Drain shuts the manager down gracefully: it stops admitting jobs, cancels
// everything still queued, and waits for running jobs to finish until ctx
// expires — at which point running jobs are cancelled too and awaited (they
// return promptly because the compute stack observes their contexts). The
// worker pool exits before Drain returns.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return errors.New("jobs: already draining")
	}
	m.draining = true
	for m.queue.Len() > 0 {
		j := heap.Pop(&m.queue).(*Job)
		if j.state == StateQueued {
			j.cancelled = true
			m.finishLocked(j, nil, context.Canceled, StateCancelled)
		}
	}
	var drainErr error
	if m.running == 0 {
		close(m.idle)
	}
	idle := m.idle
	m.mu.Unlock()

	select {
	case <-idle:
	case <-ctx.Done():
		drainErr = ctx.Err()
		// Bounded wait exhausted: cancel running jobs and wait for them
		// (prompt, since runners observe their contexts).
		m.mu.Lock()
		for _, j := range m.byID {
			if j.state == StateRunning {
				m.cancelLocked(j)
			}
		}
		m.mu.Unlock()
		<-idle
	}

	m.mu.Lock()
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	return drainErr
}

// jobHeap orders queued jobs by descending priority, then submission order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
