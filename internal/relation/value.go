// Package relation implements the typed relational substrate HypeR runs on:
// values, schemas, tuples, relations, and multi-relation databases with
// primary keys and foreign keys. It deliberately implements set semantics
// with explicit tuple identifiers, matching the notation of Section 2 of the
// paper.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull represents SQL NULL and compares less
// than every other value.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind can participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a compact tagged union holding one database value. The zero Value
// is NULL. Values are immutable; all operations return new Values.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{}

// Bool returns a boolean Value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind returns the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload. It is false for non-bool values.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// AsInt returns the value as an int64, truncating floats and parsing bools as
// 0/1. It returns 0 for strings and NULL.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the value as a float64. Ints and bools widen; strings and
// NULL yield NaN so that accidental arithmetic is detectable.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		return math.NaN()
	}
}

// AsString returns the string payload for string values and a formatted
// representation otherwise.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// String formats the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Equal reports whether two values are equal. Numeric values compare across
// int/float kinds; NULL equals only NULL.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare orders two values: NULL < bool < numeric < string across kinds,
// with numeric kinds compared by magnitude. It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool && o.kind == KindBool:
		return cmpInt64(v.i, o.i)
	case v.kind == KindString:
		return strings.Compare(v.s, o.s)
	default: // numeric
		if v.kind == KindInt && o.kind == KindInt {
			return cmpInt64(v.i, o.i)
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Key returns a canonical comparable representation usable as a map key.
// Numerically equal ints and floats map to the same key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindBool:
		if v.i != 0 {
			return "\x01t"
		}
		return "\x01f"
	case KindInt:
		return "\x02" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return "\x02" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x03" + strconv.FormatFloat(v.f, 'b', -1, 64)
	default:
		return "\x04" + v.s
	}
}

// Add returns v + o for numeric values; the result is an int when both
// operands are ints, otherwise a float. Non-numeric operands yield NULL.
func (v Value) Add(o Value) Value { return arith(v, o, '+') }

// Sub returns v - o under the same promotion rules as Add.
func (v Value) Sub(o Value) Value { return arith(v, o, '-') }

// Mul returns v * o under the same promotion rules as Add.
func (v Value) Mul(o Value) Value { return arith(v, o, '*') }

// Div returns v / o as a float; division by zero yields NULL.
func (v Value) Div(o Value) Value {
	if !v.kind.Numeric() || !o.kind.Numeric() {
		return Null
	}
	d := o.AsFloat()
	if d == 0 {
		return Null
	}
	return Float(v.AsFloat() / d)
}

func arith(v, o Value, op byte) Value {
	if !v.kind.Numeric() || !o.kind.Numeric() {
		return Null
	}
	if v.kind == KindInt && o.kind == KindInt {
		switch op {
		case '+':
			return Int(v.i + o.i)
		case '-':
			return Int(v.i - o.i)
		default:
			return Int(v.i * o.i)
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch op {
	case '+':
		return Float(a + b)
	case '-':
		return Float(a - b)
	default:
		return Float(a * b)
	}
}

// Parse converts a textual token into the most specific Value: empty string
// or "NULL" becomes NULL, then bool, int, float, finally string.
func Parse(s string) Value {
	switch s {
	case "", "NULL", "null":
		return Null
	case "true", "TRUE", "True":
		return Bool(true)
	case "false", "FALSE", "False":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return String(s)
}

// Coerce converts v to the requested kind when a lossless or standard lossy
// (float→int truncation, numeric→string formatting) conversion exists. It
// returns NULL when no conversion applies.
func Coerce(v Value, k Kind) Value {
	if v.kind == k {
		return v
	}
	switch k {
	case KindNull:
		return Null
	case KindBool:
		if v.kind.Numeric() {
			return Bool(v.AsFloat() != 0)
		}
	case KindInt:
		if v.kind.Numeric() || v.kind == KindBool {
			return Int(v.AsInt())
		}
		if v.kind == KindString {
			if i, err := strconv.ParseInt(v.s, 10, 64); err == nil {
				return Int(i)
			}
		}
	case KindFloat:
		if v.kind.Numeric() || v.kind == KindBool {
			return Float(v.AsFloat())
		}
		if v.kind == KindString {
			if f, err := strconv.ParseFloat(v.s, 64); err == nil {
				return Float(f)
			}
		}
	case KindString:
		return String(v.String())
	}
	return Null
}
