package relation

import (
	"fmt"
	"sort"
)

// ForeignKey declares that Child.ChildCol references Parent.ParentCol. HypeR
// uses foreign keys both for USE-view joins and to connect tuples in the
// ground causal graph (a review row depends on its product row).
type ForeignKey struct {
	Child     string // child relation name
	ChildCol  string
	Parent    string // parent relation name
	ParentCol string
}

// Database is a named collection of relations with foreign-key metadata. It
// models the multi-relational instance D of the paper.
type Database struct {
	rels  map[string]*Relation
	order []string
	fks   []ForeignKey
	// version is the MVCC snapshot version of this instance. A freshly
	// built database is version 0, which keeps the pre-MVCC cache identity
	// (nothing is folded into plan fingerprints or view keys); serving
	// layers opt in with SetVersion and every Extend bumps it by one.
	version int64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add registers a relation; names must be unique.
func (d *Database) Add(r *Relation) error {
	if _, dup := d.rels[r.Name()]; dup {
		return fmt.Errorf("database: duplicate relation %q", r.Name())
	}
	d.rels[r.Name()] = r
	d.order = append(d.order, r.Name())
	return nil
}

// MustAdd adds a relation and panics on error.
func (d *Database) MustAdd(r *Relation) {
	if err := d.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the named relation or nil.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Names returns the relation names in insertion order.
func (d *Database) Names() []string { return append([]string(nil), d.order...) }

// AddForeignKey declares a foreign key after validating that both ends exist.
func (d *Database) AddForeignKey(fk ForeignKey) error {
	c, p := d.rels[fk.Child], d.rels[fk.Parent]
	if c == nil {
		return fmt.Errorf("database: foreign key child relation %q not found", fk.Child)
	}
	if p == nil {
		return fmt.Errorf("database: foreign key parent relation %q not found", fk.Parent)
	}
	if !c.Schema().Has(fk.ChildCol) {
		return fmt.Errorf("database: relation %q has no column %q", fk.Child, fk.ChildCol)
	}
	if !p.Schema().Has(fk.ParentCol) {
		return fmt.Errorf("database: relation %q has no column %q", fk.Parent, fk.ParentCol)
	}
	d.fks = append(d.fks, fk)
	return nil
}

// ForeignKeys returns the declared foreign keys.
func (d *Database) ForeignKeys() []ForeignKey { return append([]ForeignKey(nil), d.fks...) }

// FindRelationOf returns the (unique) relation containing the named
// attribute. The paper assumes update and output attributes appear in a
// single relation; ambiguity is an error.
func (d *Database) FindRelationOf(attr string) (*Relation, error) {
	var found *Relation
	for _, name := range d.order {
		r := d.rels[name]
		if r.Schema().Has(attr) {
			if found != nil {
				return nil, fmt.Errorf("database: attribute %q is ambiguous (in %s and %s)", attr, found.Name(), r.Name())
			}
			found = r
		}
	}
	if found == nil {
		return nil, fmt.Errorf("database: attribute %q not found in any relation", attr)
	}
	return found, nil
}

// Version returns the database's snapshot version (0 until SetVersion or
// Extend).
func (d *Database) Version() int64 { return d.version }

// SetVersion overrides the snapshot version. Serving layers call it once at
// session creation so every published snapshot — including the first — has
// a distinct non-zero identity that caches can fold into their keys.
func (d *Database) SetVersion(v int64) { d.version = v }

// Extend returns a new database with the given tuples appended to the named
// relations and the version bumped by one. Untouched relations are shared by
// pointer (they are frozen prefixes under append-only growth); extended
// relations get a fresh row index while sharing tuple storage, so readers
// holding the old version are never perturbed.
func (d *Database) Extend(appends map[string][]Tuple) (*Database, error) {
	out := &Database{
		rels:    make(map[string]*Relation, len(d.rels)),
		order:   append([]string(nil), d.order...),
		fks:     append([]ForeignKey(nil), d.fks...),
		version: d.version + 1,
	}
	for name, r := range d.rels {
		out.rels[name] = r
	}
	for name, tuples := range appends {
		r := d.rels[name]
		if r == nil {
			return nil, fmt.Errorf("database: cannot append to unknown relation %q", name)
		}
		ext, err := r.Extend(tuples)
		if err != nil {
			return nil, err
		}
		out.rels[name] = ext
	}
	return out, nil
}

// Clone deep-copies the database including foreign keys and version.
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for _, name := range d.order {
		out.MustAdd(d.rels[name].Clone())
	}
	out.fks = append([]ForeignKey(nil), d.fks...)
	out.version = d.version
	return out
}

// TotalRows returns the number of tuples across all relations.
func (d *Database) TotalRows() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// QualifiedAttrs lists every attribute as "Relation.Attr", sorted.
func (d *Database) QualifiedAttrs() []string {
	var out []string
	for _, name := range d.order {
		for _, c := range d.rels[name].Schema().Columns() {
			out = append(out, name+"."+c.Name)
		}
	}
	sort.Strings(out)
	return out
}
