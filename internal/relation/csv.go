package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, r.schema.Len())
	for _, row := range r.rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the relation to the named file.
func (r *Relation) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV reads a relation from CSV. The first row is the header. Column
// kinds are inferred from the first non-null occurrence of each column when
// schema is nil; otherwise the provided schema is used (its names must match
// the header).
func ReadCSV(name string, rd io.Reader, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csv %s: reading header: %w", name, err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv %s: %w", name, err)
		}
		records = append(records, rec)
	}
	if schema == nil {
		cols := make([]Column, len(header))
		for i, h := range header {
			cols[i] = Column{Name: h, Kind: inferKind(records, i), Mutable: true}
		}
		schema, err = NewSchema(cols...)
		if err != nil {
			return nil, err
		}
	} else {
		if schema.Len() != len(header) {
			return nil, fmt.Errorf("csv %s: header arity %d != schema arity %d", name, len(header), schema.Len())
		}
		for i, h := range header {
			if schema.Col(i).Name != h {
				return nil, fmt.Errorf("csv %s: header column %d is %q, schema has %q", name, i, h, schema.Col(i).Name)
			}
		}
	}
	r := NewRelation(name, schema)
	for _, rec := range records {
		t := make(Tuple, len(rec))
		for i, s := range rec {
			t[i] = Parse(s)
		}
		if err := r.Insert(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// LoadCSV reads a relation from the named file with an inferred schema.
func LoadCSV(name, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, nil)
}

func inferKind(records [][]string, col int) Kind {
	kind := KindNull
	for _, rec := range records {
		if col >= len(rec) {
			continue
		}
		v := Parse(rec[col])
		if v.IsNull() {
			continue
		}
		switch {
		case kind == KindNull:
			kind = v.Kind()
		case kind == KindInt && v.Kind() == KindFloat:
			kind = KindFloat
		case kind != v.Kind() && !(kind == KindFloat && v.Kind() == KindInt):
			return KindString // mixed kinds fall back to string
		}
	}
	return kind
}
