package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, r.schema.Len())
	for _, row := range r.rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the relation to the named file.
func (r *Relation) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV reads a relation from CSV. The first row is the header. Column
// kinds are inferred from the first non-null occurrence of each column when
// schema is nil; otherwise the provided schema is used (its names must match
// the header).
func ReadCSV(name string, rd io.Reader, schema *Schema) (*Relation, error) {
	header, records, err := readCSVRecords(name, rd)
	if err != nil {
		return nil, err
	}
	if schema == nil {
		cols := make([]Column, len(header))
		for i, h := range header {
			cols[i] = Column{Name: h, Kind: inferKind(records, i), Mutable: true}
		}
		schema, err = NewSchema(cols...)
		if err != nil {
			return nil, err
		}
	} else {
		if schema.Len() != len(header) {
			return nil, fmt.Errorf("csv %s: header arity %d != schema arity %d", name, len(header), schema.Len())
		}
		for i, h := range header {
			if schema.Col(i).Name != h {
				return nil, fmt.Errorf("csv %s: header column %d is %q, schema has %q", name, i, h, schema.Col(i).Name)
			}
		}
	}
	r := NewRelation(name, schema)
	for _, rec := range records {
		t := make(Tuple, len(rec))
		for i, s := range rec {
			t[i] = Parse(s)
		}
		if err := r.Insert(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// readCSVRecords parses the header and data rows of a CSV stream.
func readCSVRecords(name string, rd io.Reader) (header []string, records [][]string, err error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = false
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("csv %s: reading header: %w", name, err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("csv %s: %w", name, err)
		}
		records = append(records, rec)
	}
	return header, records, nil
}

// ReadCSVKeyed reads a relation from CSV with an inferred schema, marking
// the named header columns as the primary key. With no keys, a synthetic
// RowID int key column is prepended so duplicate data rows are legal (a
// plain ReadCSV relation uses the whole tuple as its key and rejects
// duplicates). The serving layer uses this for uploaded databases.
func ReadCSVKeyed(name string, rd io.Reader, keys []string) (*Relation, error) {
	header, records, err := readCSVRecords(name, rd)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		cols[i] = Column{Name: h, Kind: inferKind(records, i), Mutable: true}
	}
	synthetic := len(keys) == 0
	if synthetic {
		for _, c := range cols {
			if c.Name == "RowID" {
				return nil, fmt.Errorf("csv %s: header has a RowID column; declare it (or another column) as the key", name)
			}
		}
		cols = append([]Column{{Name: "RowID", Kind: KindInt, Key: true}}, cols...)
	} else {
		isKey := make(map[string]bool, len(keys))
		for _, k := range keys {
			isKey[k] = true
		}
		found := 0
		for i := range cols {
			if isKey[cols[i].Name] {
				cols[i].Key = true
				cols[i].Mutable = false
				found++
			}
		}
		if found != len(isKey) {
			return nil, fmt.Errorf("csv %s: key columns %v are not all in the header", name, keys)
		}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	r := NewRelation(name, schema)
	for ri, rec := range records {
		t := make(Tuple, 0, len(cols))
		if synthetic {
			t = append(t, Int(int64(ri)))
		}
		for _, s := range rec {
			t = append(t, Parse(s))
		}
		if err := r.Insert(t); err != nil {
			return nil, fmt.Errorf("csv %s: %w", name, err)
		}
	}
	return r, nil
}

// ParseAppendRows parses CSV rows (header + data) destined to extend r,
// returning tuples ready for Extend — r itself is not modified. The header
// must name r's columns in schema order, with one exception: when r's first
// column is a synthetic RowID key (ReadCSVKeyed with no declared keys) the
// header omits it and RowIDs are assigned sequentially from r.Len()+offset
// (offset covers rows already staged for the same extension). Values are
// parsed with the same inference as ReadCSV; kind coercion and key
// uniqueness are enforced by Extend.
func (r *Relation) ParseAppendRows(rd io.Reader, offset int) ([]Tuple, error) {
	header, records, err := readCSVRecords(r.name, rd)
	if err != nil {
		return nil, err
	}
	names := r.schema.Names()
	want := names
	synthetic := len(names) > 0 && names[0] == "RowID" && r.schema.Col(0).Key &&
		len(header) == len(names)-1
	if synthetic {
		want = names[1:]
	}
	if len(header) != len(want) {
		return nil, fmt.Errorf("csv %s: append header arity %d != schema arity %d", r.name, len(header), len(want))
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("csv %s: append header column %d is %q, schema has %q", r.name, i, h, want[i])
		}
	}
	next := int64(r.Len() + offset)
	tuples := make([]Tuple, 0, len(records))
	for _, rec := range records {
		t := make(Tuple, 0, len(names))
		if synthetic {
			t = append(t, Int(next))
			next++
		}
		for _, s := range rec {
			t = append(t, Parse(s))
		}
		tuples = append(tuples, t)
	}
	return tuples, nil
}

// LoadCSV reads a relation from the named file with an inferred schema.
func LoadCSV(name, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, nil)
}

func inferKind(records [][]string, col int) Kind {
	kind := KindNull
	for _, rec := range records {
		if col >= len(rec) {
			continue
		}
		v := Parse(rec[col])
		if v.IsNull() {
			continue
		}
		switch {
		case kind == KindNull:
			kind = v.Kind()
		case kind == KindInt && v.Kind() == KindFloat:
			kind = KindFloat
		case kind != v.Kind() && !(kind == KindFloat && v.Kind() == KindInt):
			return KindString // mixed kinds fall back to string
		}
	}
	return kind
}
