package relation

import (
	"bytes"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "ID", Kind: KindInt, Key: true},
		Column{Name: "Name", Kind: KindString},
		Column{Name: "Score", Kind: KindFloat, Mutable: true},
	)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "A"}, Column{Name: "A"}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema(Column{Name: "K", Key: true, Mutable: true}); err == nil {
		t.Error("mutable key should fail")
	}
	s := testSchema(t)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if i, ok := s.Index("Score"); !ok || i != 2 {
		t.Errorf("Index(Score) = %d, %v", i, ok)
	}
	if s.Has("Nope") {
		t.Error("Has(Nope) should be false")
	}
	if got := s.KeyIndexes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("KeyIndexes = %v", got)
	}
	if got := s.MutableNames(); len(got) != 1 || got[0] != "Score" {
		t.Errorf("MutableNames = %v", got)
	}
	if !strings.Contains(s.String(), "ID int key") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	ns, idx, err := s.Project("Score", "ID")
	if err != nil {
		t.Fatal(err)
	}
	if ns.Len() != 2 || ns.Col(0).Name != "Score" || idx[1] != 0 {
		t.Errorf("Project = %v, %v", ns.Names(), idx)
	}
	if _, _, err := s.Project("Nope"); err == nil {
		t.Error("projecting unknown column should fail")
	}
}

func TestRelationInsertAndLookup(t *testing.T) {
	r := NewRelation("T", testSchema(t))
	if err := r.Insert(Tuple{Int(1), String("a"), Float(0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Tuple{Int(1), String("b"), Float(0.7)}); err == nil {
		t.Error("duplicate key should fail")
	}
	if err := r.Insert(Tuple{Int(2), String("b")}); err == nil {
		t.Error("wrong arity should fail")
	}
	// Coercion: int score coerces to float.
	if err := r.Insert(Tuple{Int(2), String("b"), Int(3)}); err != nil {
		t.Fatalf("coercible insert failed: %v", err)
	}
	if got := r.Value(1, "Score"); got.Kind() != KindFloat || got.AsFloat() != 3 {
		t.Errorf("coerced value = %v", got)
	}
	if err := r.Insert(Tuple{Int(3), String("c"), String("xyz")}); err == nil {
		t.Error("uncoercible insert should fail")
	}
	if i := r.LookupKey(Tuple{Int(2), Null, Null}); i != 1 {
		t.Errorf("LookupKey = %d", i)
	}
	if i := r.LookupKey(Tuple{Int(99), Null, Null}); i != -1 {
		t.Errorf("LookupKey missing = %d", i)
	}
}

func TestRelationColumnDomainMinMax(t *testing.T) {
	r := NewRelation("T", testSchema(t))
	for i, sc := range []float64{3, 1, 2, 1} {
		r.MustInsert(Int(int64(i)), String("x"), Float(sc))
	}
	col := r.Column("Score")
	if len(col) != 4 || col[0].AsFloat() != 3 {
		t.Errorf("Column = %v", col)
	}
	dom := r.Domain("Score")
	if len(dom) != 3 || dom[0].AsFloat() != 1 || dom[2].AsFloat() != 3 {
		t.Errorf("Domain = %v", dom)
	}
	lo, hi, ok := r.MinMax("Score")
	if !ok || lo != 1 || hi != 3 {
		t.Errorf("MinMax = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := NewRelation("E", testSchema(t)).MinMax("Score"); ok {
		t.Error("MinMax of empty relation should be !ok")
	}
}

func TestRelationFilterCloneSet(t *testing.T) {
	r := NewRelation("T", testSchema(t))
	for i := 0; i < 10; i++ {
		r.MustInsert(Int(int64(i)), String("x"), Float(float64(i)))
	}
	f := r.Filter(func(t Tuple) bool { return t[2].AsFloat() >= 5 })
	if f.Len() != 5 {
		t.Errorf("Filter len = %d", f.Len())
	}
	c := r.Clone()
	if err := c.Set(0, "Score", Float(99)); err != nil {
		t.Fatal(err)
	}
	if r.Value(0, "Score").AsFloat() == 99 {
		t.Error("Clone should not share tuples")
	}
	if err := c.Set(0, "ID", Int(100)); err == nil {
		t.Error("setting a key column should fail")
	}
	s := r.Sample([]int{3, 1})
	if s.Len() != 2 || s.Value(0, "ID").AsInt() != 3 {
		t.Errorf("Sample = %v", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation("T", testSchema(t))
	r.MustInsert(Int(1), String("alpha"), Float(0.25))
	r.MustInsert(Int(2), String("beta, with comma"), Null)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("T", bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip len = %d", back.Len())
	}
	if got := back.Value(1, "Name"); got.AsString() != "beta, with comma" {
		t.Errorf("name = %q", got.AsString())
	}
	if got := back.Value(1, "Score"); !got.IsNull() {
		t.Errorf("null score = %v", got)
	}
	// Inferred kinds.
	if back.Schema().Col(0).Kind != KindInt || back.Schema().Col(2).Kind != KindFloat {
		t.Errorf("inferred schema = %v", back.Schema())
	}
	// With an explicit schema, headers must match.
	wrong := MustSchema(Column{Name: "X", Kind: KindInt})
	if _, err := ReadCSV("T", bytes.NewReader(buf.Bytes()), wrong); err == nil {
		t.Error("mismatched schema should fail")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	a := NewRelation("A", MustSchema(Column{Name: "ID", Kind: KindInt, Key: true}, Column{Name: "X", Kind: KindInt}))
	bRel := NewRelation("B", MustSchema(Column{Name: "ID", Kind: KindInt, Key: true}, Column{Name: "AID", Kind: KindInt}))
	db.MustAdd(a)
	db.MustAdd(bRel)
	if err := db.Add(NewRelation("A", a.Schema())); err == nil {
		t.Error("duplicate relation should fail")
	}
	if err := db.AddForeignKey(ForeignKey{Child: "B", ChildCol: "AID", Parent: "A", ParentCol: "ID"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{Child: "B", ChildCol: "Nope", Parent: "A", ParentCol: "ID"}); err == nil {
		t.Error("bad FK column should fail")
	}
	if err := db.AddForeignKey(ForeignKey{Child: "Z", ChildCol: "AID", Parent: "A", ParentCol: "ID"}); err == nil {
		t.Error("bad FK relation should fail")
	}
	if r, err := db.FindRelationOf("X"); err != nil || r.Name() != "A" {
		t.Errorf("FindRelationOf(X) = %v, %v", r, err)
	}
	if _, err := db.FindRelationOf("ID"); err == nil {
		t.Error("ambiguous attribute should fail")
	}
	if _, err := db.FindRelationOf("Nope"); err == nil {
		t.Error("missing attribute should fail")
	}
	a.MustInsert(Int(1), Int(10))
	bRel.MustInsert(Int(1), Int(1))
	if db.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	qa := db.QualifiedAttrs()
	if len(qa) != 4 || qa[0] != "A.ID" {
		t.Errorf("QualifiedAttrs = %v", qa)
	}
	c := db.Clone()
	if c.Relation("A").Len() != 1 || len(c.ForeignKeys()) != 1 {
		t.Error("Clone lost data")
	}
}

func TestCompositeKey(t *testing.T) {
	r := NewRelation("T", MustSchema(
		Column{Name: "A", Kind: KindInt, Key: true},
		Column{Name: "B", Kind: KindInt, Key: true},
		Column{Name: "V", Kind: KindInt, Mutable: true},
	))
	r.MustInsert(Int(1), Int(1), Int(10))
	r.MustInsert(Int(1), Int(2), Int(20))
	if err := r.Insert(Tuple{Int(1), Int(1), Int(30)}); err == nil {
		t.Error("duplicate composite key should fail")
	}
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
}
