package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{String("abc"), KindString, "abc"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("int should widen to float")
	}
	if Float(3.9).AsInt() != 3 {
		t.Error("float should truncate to int")
	}
	if !math.IsNaN(String("x").AsFloat()) {
		t.Error("string AsFloat should be NaN")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsInt() != 0 {
		t.Error("bool AsInt should be 0/1")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	// NULL < bool < numeric < string.
	ordered := []Value{Null, Bool(false), Bool(true), Int(-5), Float(-1.5), Int(0), Float(0.5), Int(7), String("a"), String("b")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Equal-rank values at different positions must still order
			// consistently; we only assert sign consistency.
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Errorf("Compare(%v, %v) = %d, want sign of %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueNumericCrossKindEquality(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("numerically equal int/float should share a key")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 != 3.5")
	}
}

func TestValueArithmetic(t *testing.T) {
	if got := Int(2).Add(Int(3)); got.Kind() != KindInt || got.AsInt() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Int(2).Add(Float(0.5)); got.Kind() != KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Int(7).Mul(Int(6)); got.AsInt() != 42 {
		t.Errorf("7*6 = %v", got)
	}
	if got := Int(7).Sub(Int(9)); got.AsInt() != -2 {
		t.Errorf("7-9 = %v", got)
	}
	if got := Int(7).Div(Int(2)); got.AsFloat() != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if got := Int(7).Div(Int(0)); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := String("a").Add(Int(1)); !got.IsNull() {
		t.Errorf("'a'+1 = %v, want NULL", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null}, {"NULL", Null}, {"null", Null},
		{"true", Bool(true)}, {"FALSE", Bool(false)},
		{"42", Int(42)}, {"-3", Int(-3)},
		{"2.5", Float(2.5)}, {"1e3", Float(1000)},
		{"hello", String("hello")}, {"12abc", String("12abc")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestCoerce(t *testing.T) {
	if got := Coerce(Int(3), KindFloat); got.Kind() != KindFloat || got.AsFloat() != 3 {
		t.Errorf("int->float: %v", got)
	}
	if got := Coerce(Float(3.7), KindInt); got.AsInt() != 3 {
		t.Errorf("float->int: %v", got)
	}
	if got := Coerce(String("17"), KindInt); got.AsInt() != 17 {
		t.Errorf("string->int: %v", got)
	}
	if got := Coerce(String("x"), KindInt); !got.IsNull() {
		t.Errorf("bad string->int should be NULL, got %v", got)
	}
	if got := Coerce(Int(5), KindString); got.AsString() != "5" {
		t.Errorf("int->string: %v", got)
	}
	if got := Coerce(Int(0), KindBool); got.AsBool() {
		t.Errorf("0 -> bool should be false")
	}
}

// Property: Compare is antisymmetric and Equal iff Compare==0.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va) && (va.Equal(vb) == (va.Compare(vb) == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over distinct ints and stable across
// numerically-equal representations.
func TestKeyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		ka, kb := Int(int64(a)).Key(), Int(int64(b)).Key()
		if a == b {
			return ka == kb && Float(float64(a)).Key() == ka
		}
		return ka != kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse(v.String()) round-trips ints and bools.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(a int64, b bool) bool {
		return Parse(Int(a).String()).Equal(Int(a)) && Parse(Bool(b).String()).Equal(Bool(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
