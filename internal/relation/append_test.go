package relation

import (
	"strings"
	"testing"
)

func TestRelationExtendCopyOnWrite(t *testing.T) {
	base, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n2,b\n"), []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := base.Extend([]Tuple{{Int(3), String("c")}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 2 || grown.Len() != 3 {
		t.Fatalf("lens = %d, %d, want 2, 3", base.Len(), grown.Len())
	}
	// The base's rows are shared by pointer, not copied.
	for i := 0; i < base.Len(); i++ {
		if &base.Row(i)[0] != &grown.Row(i)[0] {
			t.Fatalf("row %d storage not shared", i)
		}
	}
	// Key lookups resolve in both; the new key only in the extension.
	if grown.LookupKey(Tuple{Int(3)}) < 0 {
		t.Error("extended relation should find the appended key")
	}
	if base.LookupKey(Tuple{Int(3)}) >= 0 {
		t.Error("base relation must not see the appended key")
	}
	// Duplicate key and arity violations are rejected.
	if _, err := grown.Extend([]Tuple{{Int(1), String("dup")}}); err == nil {
		t.Error("duplicate key should fail")
	}
	if _, err := grown.Extend([]Tuple{{Int(9)}}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestDatabaseExtendVersions(t *testing.T) {
	rel, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n"), []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := db.Add(rel); err != nil {
		t.Fatal(err)
	}
	db.SetVersion(1)
	v2, err := db.Extend(map[string][]Tuple{"T": {{Int(2), String("b")}}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 1 || v2.Version() != 2 {
		t.Fatalf("versions = %d, %d, want 1, 2", db.Version(), v2.Version())
	}
	if db.Relation("T").Len() != 1 || v2.Relation("T").Len() != 2 {
		t.Fatalf("rows = %d, %d, want 1, 2", db.Relation("T").Len(), v2.Relation("T").Len())
	}
	// Unknown relation and key conflicts surface as errors, not partial state.
	if _, err := db.Extend(map[string][]Tuple{"Nope": {{Int(1)}}}); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := v2.Extend(map[string][]Tuple{"T": {{Int(2), String("dup")}}}); err == nil {
		t.Error("duplicate key should fail")
	}
}

func TestParseAppendRowsSyntheticRowID(t *testing.T) {
	base, err := ReadCSVKeyed("T", strings.NewReader("A,B\n1,x\n2,y\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Appended CSVs carry only the data columns; RowID continues from
	// Len()+offset so two batches in one request never collide.
	rows, err := base.ParseAppendRows(strings.NewReader("A,B\n3,z\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Fatalf("rows = %v, want one row with RowID 2", rows)
	}
	more, err := base.ParseAppendRows(strings.NewReader("A,B\n4,w\n5,v\n"), len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 2 || more[0][0].AsInt() != 3 || more[1][0].AsInt() != 4 {
		t.Fatalf("second batch = %v, want RowIDs 3 and 4", more)
	}
	grown, err := base.Extend(append(rows, more...))
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != 5 {
		t.Fatalf("grown len = %d, want 5", grown.Len())
	}
	// Header must match the schema's data columns exactly.
	if _, err := base.ParseAppendRows(strings.NewReader("B,A\n1,2\n"), 0); err == nil {
		t.Error("reordered header should fail")
	}
	if _, err := base.ParseAppendRows(strings.NewReader("A\n1\n"), 0); err == nil {
		t.Error("missing column should fail")
	}
}

func TestParseAppendRowsExplicitKeys(t *testing.T) {
	base, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n"), []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	// With a natural key the appended CSV carries every column, including
	// the key itself — no synthetic numbering.
	rows, err := base.ParseAppendRows(strings.NewReader("ID,V\n7,b\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 7 {
		t.Fatalf("rows = %v, want one row with ID 7", rows)
	}
}
