package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	Name    string // attribute name, unique within the relation
	Kind    Kind   // declared kind; KindNull means untyped/any
	Key     bool   // part of the primary key (keys are always immutable)
	Mutable bool   // may change in hypothetical possible worlds
}

// Schema is an ordered list of columns with name-based lookup.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Duplicate or empty
// column names are rejected.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if c.Key && c.Mutable {
			return nil, fmt.Errorf("relation: key column %q cannot be mutable", c.Name)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for literals in
// tests and generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named column and panics if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: unknown column %q", name))
	}
	return i
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// KeyIndexes returns the positions of primary-key columns in order.
func (s *Schema) KeyIndexes() []int {
	var out []int
	for i, c := range s.cols {
		if c.Key {
			out = append(out, i)
		}
	}
	return out
}

// MutableNames returns the names of mutable columns in order.
func (s *Schema) MutableNames() []string {
	var out []string
	for _, c := range s.cols {
		if c.Mutable {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the schema as "name kind [key] [mutable], ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
		if c.Key {
			b.WriteString(" key")
		}
		if c.Mutable {
			b.WriteString(" mutable")
		}
	}
	return b.String()
}

// Project returns a new schema containing only the named columns, in the
// given order, along with their source positions.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, nil, fmt.Errorf("relation: unknown column %q", n)
		}
		cols = append(cols, s.cols[i])
		idx = append(idx, i)
	}
	ns, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return ns, idx, nil
}
