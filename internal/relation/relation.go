package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation; index i holds the value of schema column i.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is a named table: a schema plus an ordered set of tuples. Tuple
// order is deterministic (insertion order) so that all algorithms downstream
// are reproducible; set semantics are enforced on primary keys only.
type Relation struct {
	name   string
	schema *Schema
	rows   []Tuple
	keyset map[string]int // key encoding -> row index
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema, keyset: make(map[string]int)}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i-th tuple (not a copy; callers must not mutate it).
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Rows returns the underlying tuple slice (not a copy).
func (r *Relation) Rows() []Tuple { return r.rows }

// keyOf encodes the primary-key attributes of t. With no declared key, the
// whole tuple is the key.
func (r *Relation) keyOf(t Tuple) string {
	idx := r.schema.KeyIndexes()
	var b strings.Builder
	if len(idx) == 0 {
		for _, v := range t {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		return b.String()
	}
	for _, i := range idx {
		b.WriteString(t[i].Key())
		b.WriteByte('|')
	}
	return b.String()
}

// Insert appends a tuple. It validates arity and kinds (coercing where a
// standard conversion exists) and rejects duplicate primary keys.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.name, len(t), r.schema.Len())
	}
	row := make(Tuple, len(t))
	for i, v := range t {
		want := r.schema.Col(i).Kind
		if want == KindNull || v.IsNull() || v.Kind() == want {
			row[i] = v
			continue
		}
		c := Coerce(v, want)
		if c.IsNull() {
			return fmt.Errorf("relation %s: column %s: cannot coerce %s %q to %s",
				r.name, r.schema.Col(i).Name, v.Kind(), v.String(), want)
		}
		row[i] = c
	}
	k := r.keyOf(row)
	if _, dup := r.keyset[k]; dup {
		return fmt.Errorf("relation %s: duplicate primary key %v", r.name, row)
	}
	r.keyset[k] = len(r.rows)
	r.rows = append(r.rows, row)
	return nil
}

// MustInsert inserts and panics on error; for generators and tests.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Extend returns a new relation holding this relation's rows plus the given
// tuples. The receiver is never mutated: the row slice and key index are
// copied (tuple storage is shared), so readers holding the old relation see
// a frozen prefix while the extension validates and appends under exactly
// the Insert rules — arity, kind coercion, and primary-key uniqueness
// against the full (old + new) row set.
func (r *Relation) Extend(tuples []Tuple) (*Relation, error) {
	out := &Relation{
		name:   r.name,
		schema: r.schema,
		rows:   append(make([]Tuple, 0, len(r.rows)+len(tuples)), r.rows...),
		keyset: make(map[string]int, len(r.keyset)+len(tuples)),
	}
	for k, v := range r.keyset {
		out.keyset[k] = v
	}
	for _, t := range tuples {
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LookupKey returns the row index of the tuple whose primary key matches the
// key attributes of t, or -1.
func (r *Relation) LookupKey(t Tuple) int {
	if i, ok := r.keyset[r.keyOf(t)]; ok {
		return i
	}
	return -1
}

// Value returns the value of the named column in row i.
func (r *Relation) Value(i int, col string) Value {
	return r.rows[i][r.schema.MustIndex(col)]
}

// Column returns all values of the named column in row order.
func (r *Relation) Column(col string) []Value {
	ci := r.schema.MustIndex(col)
	out := make([]Value, len(r.rows))
	for i, row := range r.rows {
		out[i] = row[ci]
	}
	return out
}

// Domain returns the distinct values of the named column sorted by Compare.
func (r *Relation) Domain(col string) []Value {
	ci := r.schema.MustIndex(col)
	seen := make(map[string]Value)
	for _, row := range r.rows {
		seen[row[ci].Key()] = row[ci]
	}
	out := make([]Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// MinMax returns the minimum and maximum of a numeric column, ignoring NULLs.
// ok is false when the column has no numeric values.
func (r *Relation) MinMax(col string) (min, max float64, ok bool) {
	ci := r.schema.MustIndex(col)
	for _, row := range r.rows {
		v := row[ci]
		if !v.Kind().Numeric() {
			continue
		}
		f := v.AsFloat()
		if !ok {
			min, max, ok = f, f, true
			continue
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	return min, max, ok
}

// Filter returns a new relation (same name and schema) holding the rows for
// which keep returns true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := NewRelation(r.name, r.schema)
	for _, row := range r.rows {
		if keep(row) {
			out.rows = append(out.rows, row)
			out.keyset[out.keyOf(row)] = len(out.rows) - 1
		}
	}
	return out
}

// Clone returns a deep copy of the relation; tuples are copied so the clone
// can be mutated independently (used to materialize possible worlds).
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.name, r.schema)
	out.rows = make([]Tuple, len(r.rows))
	for i, row := range r.rows {
		out.rows[i] = row.Clone()
	}
	for k, v := range r.keyset {
		out.keyset[k] = v
	}
	return out
}

// Set overwrites the value of the named column in row i. Key columns are
// immutable and attempting to change one is an error.
func (r *Relation) Set(i int, col string, v Value) error {
	ci := r.schema.MustIndex(col)
	if r.schema.Col(ci).Key {
		return fmt.Errorf("relation %s: column %s is a key and immutable", r.name, col)
	}
	r.rows[i][ci] = v
	return nil
}

// Sample returns a new relation containing the rows at the given indexes.
func (r *Relation) Sample(indexes []int) *Relation {
	out := NewRelation(r.name, r.schema)
	for _, i := range indexes {
		row := r.rows[i]
		out.rows = append(out.rows, row)
		out.keyset[out.keyOf(row)] = len(out.rows) - 1
	}
	return out
}

// String renders a small ASCII table (up to 12 rows) for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d rows]\n", r.name, strings.Join(r.schema.Names(), ", "), len(r.rows))
	n := len(r.rows)
	if n > 12 {
		n = 12
	}
	for i := 0; i < n; i++ {
		parts := make([]string, len(r.rows[i]))
		for j, v := range r.rows[i] {
			parts[j] = v.String()
		}
		b.WriteString("  " + strings.Join(parts, ", ") + "\n")
	}
	if n < len(r.rows) {
		b.WriteString("  ...\n")
	}
	return b.String()
}
