package relation

import (
	"strings"
	"testing"
)

func TestReadCSVKeyedSyntheticRowID(t *testing.T) {
	// Duplicate data rows are legal: the synthetic key disambiguates them.
	r, err := ReadCSVKeyed("T", strings.NewReader("A,B\n1,x\n1,x\n2,y\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.Schema().Names(); got[0] != "RowID" {
		t.Fatalf("schema = %v, want leading RowID", got)
	}
	if ki := r.Schema().KeyIndexes(); len(ki) != 1 || ki[0] != 0 {
		t.Errorf("key indexes = %v, want [0]", ki)
	}
	if r.Schema().Col(0).Mutable {
		t.Error("RowID must not be mutable")
	}
	if r.Row(2)[0].AsInt() != 2 {
		t.Errorf("RowID of third row = %v, want 2", r.Row(2)[0])
	}
}

func TestReadCSVKeyedExplicitKeys(t *testing.T) {
	r, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n2,b\n"), []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Schema().Names(); len(got) != 2 || got[0] != "ID" {
		t.Fatalf("schema = %v, want [ID V]", got)
	}
	c := r.Schema().Col(0)
	if !c.Key || c.Mutable {
		t.Errorf("ID column = %+v, want key and immutable", c)
	}
	// Duplicate keys are rejected.
	if _, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n1,b\n"), []string{"ID"}); err == nil {
		t.Error("duplicate explicit key should fail")
	}
	// Unknown key column is rejected.
	if _, err := ReadCSVKeyed("T", strings.NewReader("ID,V\n1,a\n"), []string{"Nope"}); err == nil {
		t.Error("unknown key column should fail")
	}
	// A RowID header clashes with the synthetic key.
	if _, err := ReadCSVKeyed("T", strings.NewReader("RowID,V\n1,a\n"), nil); err == nil {
		t.Error("RowID header without explicit keys should fail")
	}
}
