package causal

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hyper/internal/relation"
)

// ParseModel reads a causal-model description in the text format emitted by
// cmd/hypergen:
//
//	Rel.AttrA -> Rel.AttrB          # attribute-level causal edge
//	CROSS Rel.A -> Rel.B GROUP Rel.G # cross-tuple edge within GROUP values
//	FK Child.Col -> Parent.Col       # foreign key (returned separately)
//
// Blank lines and lines starting with '#' are ignored.
func ParseModel(r io.Reader) (*Model, []relation.ForeignKey, error) {
	m := NewModel()
	var fks []relation.ForeignKey
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "CROSS":
			// CROSS A -> B GROUP G
			if len(fields) != 6 || fields[2] != "->" || fields[4] != "GROUP" {
				return nil, nil, fmt.Errorf("causal: line %d: expected 'CROSS Rel.A -> Rel.B GROUP Rel.G'", lineNo)
			}
			fr, fa := SplitQualified(fields[1])
			tr, ta := SplitQualified(fields[3])
			if fr == "" || tr == "" {
				return nil, nil, fmt.Errorf("causal: line %d: CROSS endpoints must be qualified Rel.Attr", lineNo)
			}
			m.AddCross(CrossEdge{FromRel: fr, FromAttr: fa, ToRel: tr, ToAttr: ta, GroupBy: fields[5]})
		case fields[0] == "FK":
			if len(fields) != 4 || fields[2] != "->" {
				return nil, nil, fmt.Errorf("causal: line %d: expected 'FK Child.Col -> Parent.Col'", lineNo)
			}
			cr, cc := SplitQualified(fields[1])
			pr, pc := SplitQualified(fields[3])
			if cr == "" || pr == "" {
				return nil, nil, fmt.Errorf("causal: line %d: FK endpoints must be qualified Rel.Col", lineNo)
			}
			fks = append(fks, relation.ForeignKey{Child: cr, ChildCol: cc, Parent: pr, ParentCol: pc})
		default:
			if len(fields) != 3 || fields[1] != "->" {
				return nil, nil, fmt.Errorf("causal: line %d: expected 'A -> B'", lineNo)
			}
			m.AddEdge(fields[0], fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !m.Attr.IsAcyclic() {
		_, err := m.Attr.TopoSort()
		return nil, nil, err
	}
	return m, fks, nil
}
