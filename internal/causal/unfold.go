package causal

import (
	"fmt"
	"sort"
)

// UnfoldChainGraph implements the cyclic-dependency extension sketched in
// Section 7 of the paper: a cyclic attribute graph (e.g. Price <-> Demand)
// is "unfolded" over a time horizon into an acyclic chain graph whose nodes
// are time-stamped attributes A@0, A@1, ..., A@T. Every edge A -> B of the
// original graph becomes A@t -> B@t' edges: contemporaneous (t' = t) when
// the edge is not on a cycle, and lagged (t' = t+1) when it is, so cycles
// become forward-in-time chains. Within-attribute persistence edges
// A@t -> A@t+1 are added for every attribute on a cycle.
//
// The result can be registered as an ordinary acyclic Model over a database
// whose relations carry one column per time-stamped attribute.
func UnfoldChainGraph(g *Graph, horizon int) (*Graph, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("causal: unfold horizon must be >= 1, got %d", horizon)
	}
	onCycle := cyclicEdges(g)
	out := NewGraph()
	stamp := func(name string, t int) string { return fmt.Sprintf("%s@%d", name, t) }
	for _, n := range g.Nodes() {
		for t := 0; t <= horizon; t++ {
			out.AddNode(stamp(n, t))
		}
	}
	for _, e := range g.Edges() {
		lagged := onCycle[e]
		for t := 0; t <= horizon; t++ {
			if lagged {
				if t < horizon {
					out.AddEdge(stamp(e[0], t), stamp(e[1], t+1))
				}
			} else {
				out.AddEdge(stamp(e[0], t), stamp(e[1], t))
			}
		}
	}
	// Persistence for cyclic attributes.
	needPersist := map[string]bool{}
	for e := range onCycle {
		needPersist[e[0]] = true
		needPersist[e[1]] = true
	}
	var names []string
	for n := range needPersist {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for t := 0; t < horizon; t++ {
			out.AddEdge(stamp(n, t), stamp(n, t+1))
		}
	}
	if !out.IsAcyclic() {
		// Cannot happen: all lagged edges strictly advance time and the
		// contemporaneous subgraph is acyclic by construction.
		return nil, fmt.Errorf("causal: internal error: unfolded graph is cyclic")
	}
	return out, nil
}

// cyclicEdges returns the set of edges participating in some directed cycle
// (edges within a strongly connected component of size > 1, or self-loops).
func cyclicEdges(g *Graph) map[[2]string]bool {
	comp := tarjanSCC(g)
	out := map[[2]string]bool{}
	for _, e := range g.Edges() {
		fi, _ := g.ID(e[0])
		ti, _ := g.ID(e[1])
		if fi == ti || comp[fi] == comp[ti] && sccSize(comp, comp[fi]) > 1 {
			out[e] = true
		}
	}
	return out
}

func sccSize(comp []int, c int) int {
	n := 0
	for _, x := range comp {
		if x == c {
			n++
		}
	}
	return n
}

// tarjanSCC computes strongly connected components, returning the component
// id of each node.
func tarjanSCC(g *Graph) []int {
	n := g.Len()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, comps := 0, 0

	type frame struct {
		node, child int
	}
	var visit func(v int)
	visit = func(v int) {
		// Iterative Tarjan to avoid deep recursion on long chains.
		frames := []frame{{v, 0}}
		index[v], low[v] = counter, counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			node := f.node
			children := g.out[node]
			if f.child < len(children) {
				w := children[f.child]
				f.child++
				if index[w] == -1 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[node] {
						low[node] = index[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[node] < low[parent] {
					low[parent] = low[node]
				}
			}
			if low[node] == index[node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					if w == node {
						break
					}
				}
				comps++
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			visit(v)
		}
	}
	return comp
}
