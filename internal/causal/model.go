package causal

import (
	"fmt"
	"strings"

	"hyper/internal/relation"
)

// CrossEdge declares a cross-tuple causal dependency (the dashed edges of
// Figure 2/3 in the paper): attribute FromAttr of one tuple affects ToAttr
// of *other* tuples that share the same value of GroupBy. For example, the
// Price of one laptop affects the Rating of other laptops in the same
// Category.
type CrossEdge struct {
	FromRel  string
	FromAttr string
	ToRel    string
	ToAttr   string
	GroupBy  string // qualified or bare attribute whose equality links tuples
}

// Model is the attribute-level causal model attached to a database: a DAG
// over qualified attribute names, plus declared cross-tuple edges. It is the
// schema-level summary of the PRCM; the ground causal graph is derived from
// it together with a database instance.
type Model struct {
	Attr  *Graph      // DAG over "Rel.Attr" qualified names
	Cross []CrossEdge // cross-tuple dependencies
}

// NewModel returns an empty causal model.
func NewModel() *Model {
	return &Model{Attr: NewGraph()}
}

// Qualify joins a relation and attribute name.
func Qualify(rel, attr string) string { return rel + "." + attr }

// SplitQualified splits "Rel.Attr" into its parts; a bare name yields an
// empty relation.
func SplitQualified(q string) (rel, attr string) {
	if i := strings.IndexByte(q, '.'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return "", q
}

// AddEdge adds an intra-tuple attribute dependency from -> to using
// qualified names.
func (m *Model) AddEdge(from, to string) { m.Attr.AddEdge(from, to) }

// AddCross declares a cross-tuple dependency. It also records the
// corresponding attribute-level edge so backdoor analysis sees it, except
// when source and target are the same attribute (a legitimate cross-tuple
// edge between distinct tuples that would be a self-loop at the attribute
// level; the engine captures it through ψ summary features instead).
func (m *Model) AddCross(e CrossEdge) {
	m.Cross = append(m.Cross, e)
	from, to := Qualify(e.FromRel, e.FromAttr), Qualify(e.ToRel, e.ToAttr)
	if from != to {
		m.Attr.AddEdge(from, to)
	} else {
		m.Attr.AddNode(from)
	}
}

// Validate checks the model against a database: every node must name an
// existing attribute and the graph must be acyclic.
func (m *Model) Validate(db *relation.Database) error {
	for _, n := range m.Attr.Nodes() {
		rel, attr := SplitQualified(n)
		r := db.Relation(rel)
		if r == nil {
			return fmt.Errorf("causal: model node %q references unknown relation %q", n, rel)
		}
		if !r.Schema().Has(attr) {
			return fmt.Errorf("causal: model node %q references unknown attribute %q of %q", n, attr, rel)
		}
	}
	if !m.Attr.IsAcyclic() {
		_, err := m.Attr.TopoSort()
		return err
	}
	return nil
}

// CanonicalModel returns the "no background knowledge" model of the paper
// (Section 2.2): every attribute of the update relation is a potential
// confounder of every other, i.e., the backdoor set degenerates to all
// attributes. Represented as a graph where each non-update attribute points
// at both the update and every mutable attribute.
func CanonicalModel(db *relation.Database, updateRel, updateAttr string) *Model {
	m := NewModel()
	r := db.Relation(updateRel)
	if r == nil {
		return m
	}
	u := Qualify(updateRel, updateAttr)
	m.Attr.AddNode(u)
	for _, c := range r.Schema().Columns() {
		if c.Name == updateAttr {
			continue
		}
		n := Qualify(updateRel, c.Name)
		if c.Mutable {
			// The update may affect every mutable attribute.
			m.AddEdge(u, n)
		} else if !c.Key {
			// Every immutable attribute is a potential common cause of the
			// update and of every mutable attribute.
			m.AddEdge(n, u)
			for _, c2 := range r.Schema().Columns() {
				if c2.Mutable && c2.Name != updateAttr {
					m.AddEdge(n, Qualify(updateRel, c2.Name))
				}
			}
		}
	}
	return m
}
