package causal

import (
	"fmt"
	"sort"

	"hyper/internal/relation"
)

// Block identifies one block of a block-independent decomposition: for each
// relation name, the row indexes belonging to the block (sorted ascending).
// Tuples in different blocks are causally independent (no path between any
// of their ground variables, Section 3.3).
type Block struct {
	Rows map[string][]int
}

// Size returns the total number of tuples in the block.
func (b Block) Size() int {
	n := 0
	for _, rs := range b.Rows {
		n += len(rs)
	}
	return n
}

// Decomposition is an ordered list of blocks forming a partition of the
// database.
type Decomposition struct {
	Blocks []Block
}

// NumBlocks returns the number of blocks.
func (d *Decomposition) NumBlocks() int { return len(d.Blocks) }

// Decompose computes the block-independent decomposition of db under model
// m. It performs a union-find over all tuples: tuples connected by a foreign
// key merge (their ground variables are linked through the FK join used by
// the USE view), and tuples of the relations named in a cross-tuple edge
// merge when they agree on the edge's GroupBy attribute. The result is
// deterministic: blocks are ordered by their smallest (relation, row) member.
//
// This is the linear-time procedure of Section 3.3: a single pass assigns
// each tuple to a component; no per-query work is needed.
func Decompose(db *relation.Database, m *Model) (*Decomposition, error) {
	uf, names, offset, _, err := tupleUnionFind(db, m)
	if err != nil {
		return nil, err
	}

	// Collect components into blocks keyed by representative.
	groups := uf.Groups()
	reps := make([]int, 0, len(groups))
	for r := range groups {
		reps = append(reps, r)
	}
	// Order blocks by smallest member for determinism.
	minOf := make(map[int]int, len(groups))
	for r, members := range groups {
		m0 := members[0]
		for _, x := range members {
			if x < m0 {
				m0 = x
			}
		}
		minOf[r] = m0
	}
	sort.Slice(reps, func(i, j int) bool { return minOf[reps[i]] < minOf[reps[j]] })

	dec := &Decomposition{}
	for _, r := range reps {
		b := Block{Rows: make(map[string][]int)}
		for _, id := range groups[r] {
			rel, row := locate(names, offset, db, id)
			b.Rows[rel] = append(b.Rows[rel], row)
		}
		for _, rows := range b.Rows {
			sort.Ints(rows)
		}
		dec.Blocks = append(dec.Blocks, b)
	}
	return dec, nil
}

// tupleUnionFind performs the union-find over all tuples shared by Decompose
// and RowBlocks: tuples connected by a foreign key merge, and tuples of the
// relations named in a cross-tuple edge merge when they agree on the edge's
// GroupBy attribute.
func tupleUnionFind(db *relation.Database, m *Model) (*UnionFind, []string, map[string]int, int, error) {
	// Assign a dense id to every tuple across relations.
	offset := make(map[string]int)
	total := 0
	names := db.Names()
	for _, n := range names {
		offset[n] = total
		total += db.Relation(n).Len()
	}
	uf := NewUnionFind(total)

	// 1. Foreign-key links: child tuple ~ parent tuple.
	for _, fk := range db.ForeignKeys() {
		parent := db.Relation(fk.Parent)
		child := db.Relation(fk.Child)
		pc := parent.Schema().MustIndex(fk.ParentCol)
		cc := child.Schema().MustIndex(fk.ChildCol)
		// Hash parent key -> row.
		idx := make(map[string]int, parent.Len())
		for i, row := range parent.Rows() {
			idx[row[pc].Key()] = i
		}
		for i, row := range child.Rows() {
			if p, ok := idx[row[cc].Key()]; ok {
				uf.Union(offset[fk.Child]+i, offset[fk.Parent]+p)
			}
		}
	}

	// 2. Cross-tuple causal edges: all tuples sharing a GroupBy value merge.
	if m != nil {
		for _, ce := range m.Cross {
			gRel, gAttr := SplitQualified(ce.GroupBy)
			if gRel == "" {
				gRel = ce.FromRel
			}
			r := db.Relation(gRel)
			if r == nil {
				return nil, nil, nil, 0, fmt.Errorf("causal: cross edge group relation %q not found", gRel)
			}
			gi, ok := r.Schema().Index(gAttr)
			if !ok {
				return nil, nil, nil, 0, fmt.Errorf("causal: cross edge group attribute %q not in %q", gAttr, gRel)
			}
			first := make(map[string]int)
			for i, row := range r.Rows() {
				k := row[gi].Key()
				if f, ok := first[k]; ok {
					uf.Union(offset[gRel]+f, offset[gRel]+i)
				} else {
					first[k] = i
				}
			}
		}
	}
	return uf, names, offset, total, nil
}

// RowBlocks computes the same decomposition as Decompose but returns only
// per-relation block ids (rowBlocks[rel][row] = block id) and the block
// count, skipping the per-block row-map materialization — the representation
// the engine's per-tuple accumulation actually needs. Block ids follow
// Decompose's ordering exactly: blocks are numbered by their smallest
// (relation, row) member, so the two APIs are interchangeable.
func RowBlocks(db *relation.Database, m *Model) (map[string][]int, int, error) {
	uf, names, offset, total, err := tupleUnionFind(db, m)
	if err != nil {
		return nil, 0, err
	}
	// Scanning dense ids in order assigns block ids by smallest member.
	// Roots are dense tuple ids, so a flat slice replaces the map on this
	// hot path (the scan runs once per view build, over every tuple of the
	// database).
	blockOf := make([]int, total)
	rootBlock := make([]int32, total)
	for i := range rootBlock {
		rootBlock[i] = -1
	}
	nBlocks := 0
	for id := 0; id < total; id++ {
		root := uf.Find(id)
		b := rootBlock[root]
		if b < 0 {
			b = int32(nBlocks)
			rootBlock[root] = b
			nBlocks++
		}
		blockOf[id] = int(b)
	}
	out := make(map[string][]int, len(names))
	for _, n := range names {
		o := offset[n]
		out[n] = blockOf[o : o+db.Relation(n).Len()]
	}
	return out, nBlocks, nil
}

func locate(names []string, offset map[string]int, db *relation.Database, id int) (string, int) {
	for i := len(names) - 1; i >= 0; i-- {
		n := names[i]
		if id >= offset[n] {
			return n, id - offset[n]
		}
	}
	panic("causal: tuple id out of range")
}

// GroundGraph materializes the full ground causal graph of db under model m:
// one node per (relation, row, attribute), intra-tuple edges from the
// attribute DAG, and cross-tuple edges expanded per GroupBy group. It is
// intended for small databases (tests, the toy example of Figure 1); block
// decomposition of large databases uses Decompose, which never materializes
// this graph.
func GroundGraph(db *relation.Database, m *Model) (*Graph, error) {
	g := NewGraph()
	node := func(rel string, row int, attr string) string {
		return fmt.Sprintf("%s[%d].%s", rel, row, attr)
	}
	// Intra-tuple edges from the attribute DAG (same relation only).
	for _, e := range m.Attr.Edges() {
		fr, fa := SplitQualified(e[0])
		tr, ta := SplitQualified(e[1])
		if fr != tr {
			continue // cross-relation edges are handled via FK/cross rules
		}
		r := db.Relation(fr)
		if r == nil {
			return nil, fmt.Errorf("causal: ground graph: unknown relation %q", fr)
		}
		for i := 0; i < r.Len(); i++ {
			g.AddEdge(node(fr, i, fa), node(tr, i, ta))
		}
	}
	// Cross-relation intra-entity edges through foreign keys: an edge
	// Parent.A -> Child.B in the attribute DAG grounds to edges between each
	// parent row and its children (and vice versa for Child.A -> Parent.B).
	for _, e := range m.Attr.Edges() {
		fr, fa := SplitQualified(e[0])
		tr, ta := SplitQualified(e[1])
		if fr == tr {
			continue
		}
		for _, fk := range db.ForeignKeys() {
			var pRel, cRel string = fk.Parent, fk.Child
			if (fr == pRel && tr == cRel) || (fr == cRel && tr == pRel) {
				parent := db.Relation(pRel)
				child := db.Relation(cRel)
				pc := parent.Schema().MustIndex(fk.ParentCol)
				cc := child.Schema().MustIndex(fk.ChildCol)
				idx := make(map[string][]int)
				for i, row := range child.Rows() {
					k := row[cc].Key()
					idx[k] = append(idx[k], i)
				}
				for pi, prow := range parent.Rows() {
					for _, ci := range idx[prow[pc].Key()] {
						if fr == pRel {
							g.AddEdge(node(fr, pi, fa), node(tr, ci, ta))
						} else {
							g.AddEdge(node(fr, ci, fa), node(tr, pi, ta))
						}
					}
				}
			}
		}
	}
	// Cross-tuple edges: expand within each GroupBy group (distinct tuples).
	for _, ce := range m.Cross {
		gRel, gAttr := SplitQualified(ce.GroupBy)
		if gRel == "" {
			gRel = ce.FromRel
		}
		if gRel != ce.FromRel || ce.FromRel != ce.ToRel {
			// Cross edges across relations ground through the FK path above;
			// only same-relation group edges expand here.
			continue
		}
		r := db.Relation(gRel)
		gi := r.Schema().MustIndex(gAttr)
		groups := make(map[string][]int)
		for i, row := range r.Rows() {
			k := row[gi].Key()
			groups[k] = append(groups[k], i)
		}
		for _, rows := range groups {
			for _, i := range rows {
				for _, j := range rows {
					if i != j {
						g.AddEdge(node(ce.FromRel, i, ce.FromAttr), node(ce.ToRel, j, ce.ToAttr))
					}
				}
			}
		}
	}
	return g, nil
}

// Independent reports whether tuples (relA, rowA) and (relB, rowB) are
// independent under the ground graph g: no ground variable of one connects
// to any ground variable of the other.
func Independent(g *Graph, db *relation.Database, relA string, rowA int, relB string, rowB int) bool {
	ra, rb := db.Relation(relA), db.Relation(relB)
	for _, ca := range ra.Schema().Columns() {
		na := fmt.Sprintf("%s[%d].%s", relA, rowA, ca.Name)
		if !g.Has(na) {
			continue
		}
		for _, cb := range rb.Schema().Columns() {
			nb := fmt.Sprintf("%s[%d].%s", relB, rowB, cb.Name)
			if !g.Has(nb) {
				continue
			}
			if g.ConnectedTo(na, nb) {
				return false
			}
		}
	}
	return true
}
