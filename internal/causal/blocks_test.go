package causal

import (
	"strings"
	"testing"

	"hyper/internal/relation"
)

// twoTableDB builds Product/Review with an FK, three categories.
func twoTableDB(t *testing.T) *relation.Database {
	t.Helper()
	prod := relation.NewRelation("Product", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Category", Kind: relation.KindString},
		relation.Column{Name: "Price", Kind: relation.KindFloat, Mutable: true},
	))
	prod.MustInsert(relation.Int(1), relation.String("A"), relation.Float(10))
	prod.MustInsert(relation.Int(2), relation.String("A"), relation.Float(20))
	prod.MustInsert(relation.Int(3), relation.String("B"), relation.Float(30))
	prod.MustInsert(relation.Int(4), relation.String("C"), relation.Float(40))
	rev := relation.NewRelation("Review", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "RID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Rating", Kind: relation.KindInt, Mutable: true},
	))
	rev.MustInsert(relation.Int(1), relation.Int(1), relation.Int(5))
	rev.MustInsert(relation.Int(3), relation.Int(2), relation.Int(4))
	rev.MustInsert(relation.Int(3), relation.Int(3), relation.Int(3))
	db := relation.NewDatabase()
	db.MustAdd(prod)
	db.MustAdd(rev)
	if err := db.AddForeignKey(relation.ForeignKey{Child: "Review", ChildCol: "PID", Parent: "Product", ParentCol: "PID"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func productModel() *Model {
	m := NewModel()
	m.AddEdge("Product.Price", "Review.Rating")
	return m
}

func TestDecomposeFKOnly(t *testing.T) {
	db := twoTableDB(t)
	dec, err := Decompose(db, productModel())
	if err != nil {
		t.Fatal(err)
	}
	// Products 1..4 each form their own block; reviews join their product:
	// blocks {p1,r1}, {p2}, {p3,r2,r3}, {p4}.
	if dec.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", dec.NumBlocks())
	}
	sizes := map[int]int{}
	for _, b := range dec.Blocks {
		sizes[b.Size()]++
	}
	if sizes[1] != 2 || sizes[2] != 1 || sizes[3] != 1 {
		t.Errorf("block size histogram = %v", sizes)
	}
}

func TestDecomposeWithCrossEdges(t *testing.T) {
	db := twoTableDB(t)
	m := productModel()
	m.AddCross(CrossEdge{FromRel: "Product", FromAttr: "Price", ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	dec, err := Decompose(db, m)
	if err != nil {
		t.Fatal(err)
	}
	// Category A merges products 1 and 2: blocks {p1,p2,r1}, {p3,r2,r3}, {p4}.
	if dec.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", dec.NumBlocks())
	}
}

func TestDecomposeIsPartition(t *testing.T) {
	db := twoTableDB(t)
	m := productModel()
	m.AddCross(CrossEdge{FromRel: "Product", FromAttr: "Price", ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	dec, err := Decompose(db, m)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	total := 0
	for _, b := range dec.Blocks {
		for rel, rows := range b.Rows {
			for _, r := range rows {
				key := rel + ":" + string(rune('0'+r))
				if seen[key] {
					t.Fatalf("tuple %s appears in two blocks", key)
				}
				seen[key] = true
				total++
			}
		}
	}
	if total != db.TotalRows() {
		t.Errorf("partition covers %d of %d tuples", total, db.TotalRows())
	}
}

func TestGroundGraphAndIndependence(t *testing.T) {
	db := twoTableDB(t)
	m := productModel()
	m.AddCross(CrossEdge{FromRel: "Product", FromAttr: "Price", ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	g, err := GroundGraph(db, m)
	if err != nil {
		t.Fatal(err)
	}
	// Product 1's price must reach review 0's rating (FK grounding).
	if !g.ConnectedTo("Product[0].Price", "Review[0].Rating") {
		t.Error("p1 price should ground-connect to its review")
	}
	// Cross edge: product 0 and 1 share category A.
	if !g.ConnectedTo("Product[0].Price", "Product[1].Price") {
		t.Error("same-category prices should connect")
	}
	// Products 0 (cat A) and 3 (cat C) are independent.
	if !Independent(g, db, "Product", 0, "Product", 3) {
		t.Error("p1 and p4 should be independent")
	}
	if Independent(g, db, "Product", 2, "Review", 1) {
		t.Error("p3 is not independent of its own review")
	}
}

// TestBlocksMatchGroundGraph cross-validates the linear-time union-find
// decomposition against pairwise independence on the materialized ground
// graph (Proposition 7's premise: same block iff dependent).
func TestBlocksMatchGroundGraph(t *testing.T) {
	db := twoTableDB(t)
	m := productModel()
	m.AddCross(CrossEdge{FromRel: "Product", FromAttr: "Price", ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	dec, err := Decompose(db, m)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GroundGraph(db, m)
	if err != nil {
		t.Fatal(err)
	}
	blockOf := map[string]int{}
	for bi, b := range dec.Blocks {
		for rel, rows := range b.Rows {
			for _, r := range rows {
				blockOf[keyOf(rel, r)] = bi
			}
		}
	}
	type tup struct {
		rel string
		row int
	}
	var all []tup
	for _, rn := range db.Names() {
		for i := 0; i < db.Relation(rn).Len(); i++ {
			all = append(all, tup{rn, i})
		}
	}
	for _, a := range all {
		for _, b := range all {
			sameBlock := blockOf[keyOf(a.rel, a.row)] == blockOf[keyOf(b.rel, b.row)]
			indep := Independent(g, db, a.rel, a.row, b.rel, b.row)
			if a == b {
				continue
			}
			if sameBlock && indep && a.rel == b.rel && a.rel == "Product" {
				// Same block but independent is allowed only via shared FK
				// grouping; for product pairs it indicates a bug.
				t.Errorf("%v and %v share a block but are ground-independent", a, b)
			}
			if !sameBlock && !indep {
				t.Errorf("%v and %v are dependent but in different blocks", a, b)
			}
		}
	}
}

func keyOf(rel string, row int) string { return rel + "#" + string(rune('0'+row)) }

func TestModelValidate(t *testing.T) {
	db := twoTableDB(t)
	m := productModel()
	if err := m.Validate(db); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := NewModel()
	bad.AddEdge("Nope.X", "Product.Price")
	if err := bad.Validate(db); err == nil {
		t.Error("unknown relation should fail validation")
	}
	bad2 := NewModel()
	bad2.AddEdge("Product.Nope", "Product.Price")
	if err := bad2.Validate(db); err == nil {
		t.Error("unknown attribute should fail validation")
	}
	cyc := NewModel()
	cyc.AddEdge("Product.Price", "Review.Rating")
	cyc.AddEdge("Review.Rating", "Product.Price")
	if err := cyc.Validate(db); err == nil {
		t.Error("cyclic model should fail validation")
	}
}

func TestCanonicalModel(t *testing.T) {
	db := twoTableDB(t)
	m := CanonicalModel(db, "Product", "Price")
	if !m.Attr.IsAcyclic() {
		t.Error("canonical model must be acyclic")
	}
	if !m.Attr.Has("Product.Price") {
		t.Error("canonical model must include the update attribute")
	}
	// Category (immutable non-key) must point at Price.
	found := false
	for _, e := range m.Attr.Edges() {
		if e[0] == "Product.Category" && e[1] == "Product.Price" {
			found = true
		}
	}
	if !found {
		t.Error("immutable attributes should be treated as confounders")
	}
}

func TestParseModel(t *testing.T) {
	src := `
# comment
Product.Price -> Review.Rating
CROSS Product.Price -> Product.Price GROUP Product.Category
FK Review.PID -> Product.PID
`
	m, fks, err := ParseModel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Attr.Edges()) != 1 || len(m.Cross) != 1 || len(fks) != 1 {
		t.Errorf("parsed %d edges %d cross %d fks", len(m.Attr.Edges()), len(m.Cross), len(fks))
	}
	if fks[0].Child != "Review" || fks[0].ParentCol != "PID" {
		t.Errorf("fk = %+v", fks[0])
	}
	for _, bad := range []string{
		"A ->", "CROSS A -> B", "FK A -> B.C", "A -> B -> C",
	} {
		if _, _, err := ParseModel(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseModel(%q) should fail", bad)
		}
	}
	// Cycles rejected.
	if _, _, err := ParseModel(strings.NewReader("R.A -> R.B\nR.B -> R.A\n")); err == nil {
		t.Error("cyclic model text should fail")
	}
}

func TestQualify(t *testing.T) {
	if Qualify("R", "A") != "R.A" {
		t.Error("Qualify")
	}
	r, a := SplitQualified("R.A")
	if r != "R" || a != "A" {
		t.Error("SplitQualified")
	}
	r, a = SplitQualified("bare")
	if r != "" || a != "bare" {
		t.Error("SplitQualified bare")
	}
}
