package causal

// UnionFind is a classic disjoint-set forest with path compression and union
// by rank, used to compute block-independent decompositions in near-linear
// time.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether a merge happened.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Groups returns the members of each set, keyed by representative, with
// members in ascending order.
func (u *UnionFind) Groups() map[int][]int {
	g := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}
