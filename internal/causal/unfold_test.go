package causal

import (
	"strings"
	"testing"
)

// cyclicGraph: Price <-> Demand with an exogenous Cost -> Price.
func cyclicGraph() *Graph {
	g := NewGraph()
	g.AddEdge("Price", "Demand")
	g.AddEdge("Demand", "Price")
	g.AddEdge("Cost", "Price")
	return g
}

func TestUnfoldChainGraphAcyclic(t *testing.T) {
	g := cyclicGraph()
	if g.IsAcyclic() {
		t.Fatal("fixture should be cyclic")
	}
	u, err := UnfoldChainGraph(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsAcyclic() {
		t.Fatal("unfolded graph must be acyclic")
	}
	// 3 attributes x 4 time steps.
	if u.Len() != 12 {
		t.Errorf("nodes = %d, want 12", u.Len())
	}
	// Cyclic edges become lagged: Price@0 -> Demand@1, Demand@0 -> Price@1.
	has := func(a, b string) bool {
		for _, e := range u.Edges() {
			if e[0] == a && e[1] == b {
				return true
			}
		}
		return false
	}
	if !has("Price@0", "Demand@1") || !has("Demand@0", "Price@1") {
		t.Error("cycle edges should be lagged by one step")
	}
	if has("Price@0", "Demand@0") {
		t.Error("cyclic edge must not stay contemporaneous")
	}
	// The acyclic edge Cost -> Price stays contemporaneous.
	if !has("Cost@0", "Price@0") || !has("Cost@3", "Price@3") {
		t.Error("acyclic edges should remain contemporaneous at every step")
	}
	// Persistence: Price@t -> Price@t+1.
	if !has("Price@0", "Price@1") || !has("Demand@2", "Demand@3") {
		t.Error("cyclic attributes should persist across steps")
	}
}

func TestUnfoldSelfLoop(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "A")
	u, err := UnfoldChainGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsAcyclic() {
		t.Fatal("self-loop unfolds to a chain")
	}
	found := false
	for _, e := range u.Edges() {
		if e[0] == "A@0" && e[1] == "A@1" {
			found = true
		}
	}
	if !found {
		t.Error("self-loop should become A@t -> A@t+1")
	}
}

func TestUnfoldAcyclicGraphIsReplicated(t *testing.T) {
	g := chain("A", "B", "C")
	u, err := UnfoldChainGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No lagged or persistence edges for an already-acyclic graph.
	for _, e := range u.Edges() {
		ta := e[0][strings.IndexByte(e[0], '@')+1:]
		tb := e[1][strings.IndexByte(e[1], '@')+1:]
		if ta != tb {
			t.Errorf("acyclic input should unfold without lagged edges, got %v", e)
		}
	}
	if len(u.Edges()) != 2*3 {
		t.Errorf("edges = %d, want 6", len(u.Edges()))
	}
}

func TestUnfoldBadHorizon(t *testing.T) {
	if _, err := UnfoldChainGraph(cyclicGraph(), 0); err == nil {
		t.Error("horizon 0 should fail")
	}
}

func TestUnfoldBackdoorOnLaggedGraph(t *testing.T) {
	// After unfolding, standard backdoor analysis applies: the effect of
	// Price@1 on Demand@2 is confounded by Demand@0 -> Price@1 (lagged) and
	// Demand@0 -> Demand@1 -> Demand@2 (persistence).
	u, err := UnfoldChainGraph(cyclicGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	set, ok := u.BackdoorSet("Price@1", []string{"Demand@2"}, u.Nodes())
	if !ok {
		t.Fatal("a backdoor set must exist on the unfolded DAG")
	}
	if !u.IsBackdoorSet("Price@1", []string{"Demand@2"}, set) {
		t.Errorf("returned set %v is not a valid backdoor set", set)
	}
}
