package causal

import "sort"

// DSeparated reports whether every path between any x in xs and any y in ys
// is blocked by the conditioning set z, using the reachability ("Bayes
// ball") formulation of d-separation.
func (g *Graph) DSeparated(xs, ys, z []string) bool {
	zset := make([]bool, len(g.nodes))
	for _, n := range z {
		if i, ok := g.index[n]; ok {
			zset[i] = true
		}
	}
	// ancestors of z (inclusive), needed for collider openings
	anc := make([]bool, len(g.nodes))
	var stack []int
	for i, in := range zset {
		if in {
			anc[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.in[n] {
			if !anc[p] {
				anc[p] = true
				stack = append(stack, p)
			}
		}
	}

	yset := make([]bool, len(g.nodes))
	for _, n := range ys {
		if i, ok := g.index[n]; ok {
			yset[i] = true
		}
	}

	// State: (node, direction) where direction is whether we arrived via an
	// edge pointing INTO the node (true) or OUT of it (false).
	type state struct {
		node int
		into bool
	}
	visited := make(map[state]bool)
	var frontier []state
	for _, n := range xs {
		if i, ok := g.index[n]; ok {
			// Leaving the source: treat as arriving from a virtual parent
			// (into=false lets us traverse both directions initially).
			frontier = append(frontier, state{i, false})
		}
	}
	for len(frontier) > 0 {
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if visited[s] {
			continue
		}
		visited[s] = true
		n := s.node
		if yset[n] {
			return false // reached y: not d-separated
		}
		if !s.into {
			// Arrived via an outgoing edge (i.e., from a child) or source.
			if !zset[n] {
				for _, p := range g.in[n] {
					frontier = append(frontier, state{p, false})
				}
				for _, c := range g.out[n] {
					frontier = append(frontier, state{c, true})
				}
			}
		} else {
			// Arrived via an incoming edge (from a parent): n is a potential
			// collider on the path.
			if !zset[n] {
				for _, c := range g.out[n] {
					frontier = append(frontier, state{c, true})
				}
			}
			if anc[n] {
				// Collider open when n or a descendant is conditioned on.
				for _, p := range g.in[n] {
					frontier = append(frontier, state{p, false})
				}
			}
		}
	}
	return true
}

// IsBackdoorSet reports whether c satisfies Pearl's backdoor criterion with
// respect to treatment b and outcomes ys: no node of c is a descendant of b,
// and c d-separates b from every y in the graph with b's outgoing edges
// removed (blocking exactly the backdoor paths).
func (g *Graph) IsBackdoorSet(b string, ys []string, c []string) bool {
	desc := g.Descendants(b)
	descSet := make(map[string]bool, len(desc))
	for _, d := range desc {
		descSet[d] = true
	}
	for _, n := range c {
		if descSet[n] || n == b {
			return false
		}
		found := false
		for _, y := range ys {
			if n == y {
				found = true
			}
		}
		if found {
			return false
		}
	}
	gb := g.RemoveOutEdges(b)
	return gb.DSeparated([]string{b}, ys, c)
}

// BackdoorSet returns a minimal (not necessarily minimum) set of attributes
// satisfying the backdoor criterion for treatment b and outcomes ys,
// restricted to the candidate attributes cand (pass g.Nodes() for no
// restriction). It follows the paper's greedy procedure (A.2 step B): start
// from all candidate non-descendants of {b} ∪ ys and drop one node at a time
// while the set remains a valid backdoor set. ok is false when no valid
// backdoor set exists within the candidates.
func (g *Graph) BackdoorSet(b string, ys []string, cand []string) (set []string, ok bool) {
	bad := make(map[string]bool)
	for _, d := range g.Descendants(append([]string{b}, ys...)...) {
		bad[d] = true
	}
	bad[b] = true
	for _, y := range ys {
		bad[y] = true
	}
	var c []string
	for _, n := range cand {
		if !bad[n] && g.Has(n) {
			c = append(c, n)
		}
	}
	sort.Strings(c)
	if !g.IsBackdoorSet(b, ys, c) {
		return nil, false
	}
	// Greedy minimization; iterate until no single removal keeps validity.
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(c); i++ {
			trial := make([]string, 0, len(c)-1)
			trial = append(trial, c[:i]...)
			trial = append(trial, c[i+1:]...)
			if g.IsBackdoorSet(b, ys, trial) {
				c = trial
				changed = true
				break
			}
		}
	}
	return c, true
}
