// Package causal implements the causal-graph substrate of HypeR: attribute
// level causal DAGs, d-separation and the backdoor criterion (Pearl), the
// ground causal graph over tuples, and block-independent decomposition of a
// database (Section 2.2 and 3.3 of the paper).
package causal

import (
	"fmt"
	"sort"
)

// Graph is a directed graph over named attribute nodes. HypeR uses qualified
// names ("Product.Price") for multi-relation databases and bare names for
// single-relation ones. Graphs are built once and then queried; they are not
// safe for concurrent mutation.
type Graph struct {
	nodes []string
	index map[string]int
	out   [][]int // children
	in    [][]int // parents
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node if absent and returns its id.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, name)
	g.index[name] = i
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return i
}

// AddEdge inserts a directed edge from -> to, adding missing nodes.
// Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to string) {
	f, t := g.AddNode(from), g.AddNode(to)
	for _, c := range g.out[f] {
		if c == t {
			return
		}
	}
	g.out[f] = append(g.out[f], t)
	g.in[t] = append(g.in[t], f)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Name returns the name of node i.
func (g *Graph) Name(i int) string { return g.nodes[i] }

// Nodes returns all node names in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// ID returns the id of the named node and whether it exists.
func (g *Graph) ID(name string) (int, bool) {
	i, ok := g.index[name]
	return i, ok
}

// Has reports whether the named node exists.
func (g *Graph) Has(name string) bool { _, ok := g.index[name]; return ok }

// Parents returns the parent names of the named node, sorted.
func (g *Graph) Parents(name string) []string {
	i, ok := g.index[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.in[i]))
	for _, p := range g.in[i] {
		out = append(out, g.nodes[p])
	}
	sort.Strings(out)
	return out
}

// Children returns the child names of the named node, sorted.
func (g *Graph) Children(name string) []string {
	i, ok := g.index[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.out[i]))
	for _, c := range g.out[i] {
		out = append(out, g.nodes[c])
	}
	sort.Strings(out)
	return out
}

// Edges returns all edges as [from, to] name pairs, sorted.
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for f, cs := range g.out {
		for _, c := range cs {
			out = append(out, [2]string{g.nodes[f], g.nodes[c]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TopoSort returns node ids in a topological order, or an error naming one
// node on a cycle. The paper assumes acyclic models; HypeR validates this at
// model registration.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, len(g.nodes))
	for _, cs := range g.out {
		for _, c := range cs {
			indeg[c]++
		}
	}
	queue := make([]int, 0, len(g.nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	// Deterministic order: process smallest id first.
	sort.Ints(queue)
	order := make([]int, 0, len(g.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		added := false
		for _, c := range g.out[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
				added = true
			}
		}
		if added {
			sort.Ints(queue)
		}
	}
	if len(order) != len(g.nodes) {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("causal: graph has a cycle through %q", g.nodes[i])
			}
		}
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// TopoNames returns node names in topological order.
func (g *Graph) TopoNames() ([]string, error) {
	ids, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out, nil
}

// descendantsOf returns the set (as bool slice) of nodes reachable from any
// seed by directed edges, excluding the seeds themselves unless reachable.
func (g *Graph) reach(seeds []int, adj [][]int) []bool {
	seen := make([]bool, len(g.nodes))
	stack := append([]int(nil), seeds...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return seen
}

// Descendants returns the names of all strict descendants of the named
// nodes, sorted.
func (g *Graph) Descendants(names ...string) []string {
	seeds := g.ids(names)
	seen := g.reach(seeds, g.out)
	return g.selectNames(seen)
}

// Ancestors returns the names of all strict ancestors of the named nodes,
// sorted.
func (g *Graph) Ancestors(names ...string) []string {
	seeds := g.ids(names)
	seen := g.reach(seeds, g.in)
	return g.selectNames(seen)
}

// IsDescendant reports whether b is a strict descendant of a.
func (g *Graph) IsDescendant(b, a string) bool {
	ai, ok := g.index[a]
	if !ok {
		return false
	}
	bi, ok := g.index[b]
	if !ok {
		return false
	}
	seen := g.reach([]int{ai}, g.out)
	return seen[bi]
}

// ConnectedTo reports whether any undirected path connects a and b.
func (g *Graph) ConnectedTo(a, b string) bool {
	ai, ok := g.index[a]
	if !ok {
		return false
	}
	bi, ok := g.index[b]
	if !ok {
		return false
	}
	if ai == bi {
		return true
	}
	seen := make([]bool, len(g.nodes))
	seen[ai] = true
	stack := []int{ai}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, adj := range [][]int{g.out[n], g.in[n]} {
			for _, m := range adj {
				if !seen[m] {
					if m == bi {
						return true
					}
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	for _, n := range g.nodes {
		ng.AddNode(n)
	}
	for f, cs := range g.out {
		for _, c := range cs {
			ng.AddEdge(g.nodes[f], g.nodes[c])
		}
	}
	return ng
}

// RemoveOutEdges returns a copy of the graph with all edges leaving the
// named nodes deleted; used by the backdoor test.
func (g *Graph) RemoveOutEdges(names ...string) *Graph {
	drop := make(map[int]bool)
	for _, n := range names {
		if i, ok := g.index[n]; ok {
			drop[i] = true
		}
	}
	ng := NewGraph()
	for _, n := range g.nodes {
		ng.AddNode(n)
	}
	for f, cs := range g.out {
		if drop[f] {
			continue
		}
		for _, c := range cs {
			ng.AddEdge(g.nodes[f], g.nodes[c])
		}
	}
	return ng
}

func (g *Graph) ids(names []string) []int {
	var out []int
	for _, n := range names {
		if i, ok := g.index[n]; ok {
			out = append(out, i)
		}
	}
	return out
}

func (g *Graph) selectNames(seen []bool) []string {
	var out []string
	for i, s := range seen {
		if s {
			out = append(out, g.nodes[i])
		}
	}
	sort.Strings(out)
	return out
}
