package causal

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"hyper/internal/stats"
)

// chain builds A -> B -> C ... over the given names.
func chain(names ...string) *Graph {
	g := NewGraph()
	for i := 0; i+1 < len(names); i++ {
		g.AddEdge(names[i], names[i+1])
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "B")
	g.AddEdge("A", "B") // duplicate ignored
	g.AddEdge("B", "C")
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if got := g.Children("A"); !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("Children(A) = %v", got)
	}
	if got := g.Parents("C"); !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("Parents(C) = %v", got)
	}
	if got := g.Edges(); len(got) != 2 {
		t.Errorf("Edges = %v", got)
	}
	if !g.Has("A") || g.Has("Z") {
		t.Error("Has misbehaves")
	}
}

func TestTopoSortAndCycles(t *testing.T) {
	g := chain("A", "B", "C", "D")
	g.AddEdge("A", "C")
	names, err := g.TopoNames()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range names {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order %v", e, names)
		}
	}
	if !g.IsAcyclic() {
		t.Error("chain should be acyclic")
	}
	g.AddEdge("D", "A")
	if g.IsAcyclic() {
		t.Error("cycle not detected")
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort should report the cycle")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := chain("A", "B", "C")
	g.AddEdge("X", "C")
	if got := g.Descendants("A"); !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Errorf("Descendants(A) = %v", got)
	}
	if got := g.Ancestors("C"); !reflect.DeepEqual(got, []string{"A", "B", "X"}) {
		t.Errorf("Ancestors(C) = %v", got)
	}
	if !g.IsDescendant("C", "A") || g.IsDescendant("A", "C") {
		t.Error("IsDescendant misbehaves")
	}
	if !g.ConnectedTo("A", "X") { // undirected path via C
		t.Error("A and X connect through C undirected")
	}
	g2 := NewGraph()
	g2.AddNode("L")
	g2.AddNode("R")
	if g2.ConnectedTo("L", "R") {
		t.Error("isolated nodes are not connected")
	}
}

func TestDSeparationClassicStructures(t *testing.T) {
	// Chain A -> B -> C: A ⟂ C | B, but not marginally.
	g := chain("A", "B", "C")
	if g.DSeparated([]string{"A"}, []string{"C"}, nil) {
		t.Error("chain: A and C are marginally dependent")
	}
	if !g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"}) {
		t.Error("chain: conditioning on B blocks the path")
	}

	// Fork A <- B -> C: same pattern.
	g = NewGraph()
	g.AddEdge("B", "A")
	g.AddEdge("B", "C")
	if g.DSeparated([]string{"A"}, []string{"C"}, nil) {
		t.Error("fork: marginally dependent")
	}
	if !g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"}) {
		t.Error("fork: blocked by B")
	}

	// Collider A -> B <- C: A ⟂ C, but dependent given B or B's descendant.
	g = NewGraph()
	g.AddEdge("A", "B")
	g.AddEdge("C", "B")
	g.AddEdge("B", "D")
	if !g.DSeparated([]string{"A"}, []string{"C"}, nil) {
		t.Error("collider: marginally independent")
	}
	if g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"}) {
		t.Error("collider: conditioning on B opens the path")
	}
	if g.DSeparated([]string{"A"}, []string{"C"}, []string{"D"}) {
		t.Error("collider: conditioning on a descendant of B opens the path")
	}
}

// confounderGraph: classic X <- Z -> Y with X -> Y.
func confounderGraph() *Graph {
	g := NewGraph()
	g.AddEdge("Z", "X")
	g.AddEdge("Z", "Y")
	g.AddEdge("X", "Y")
	return g
}

func TestBackdoorCriterion(t *testing.T) {
	g := confounderGraph()
	if !g.IsBackdoorSet("X", []string{"Y"}, []string{"Z"}) {
		t.Error("{Z} is the textbook backdoor set")
	}
	if g.IsBackdoorSet("X", []string{"Y"}, nil) {
		t.Error("empty set leaves the backdoor path open")
	}
	// A descendant of X is never allowed.
	g.AddEdge("X", "M")
	if g.IsBackdoorSet("X", []string{"Y"}, []string{"Z", "M"}) {
		t.Error("descendants of the treatment are not allowed")
	}
	set, ok := g.BackdoorSet("X", []string{"Y"}, g.Nodes())
	if !ok || !reflect.DeepEqual(set, []string{"Z"}) {
		t.Errorf("BackdoorSet = %v, %v", set, ok)
	}
}

func TestBackdoorMDiagram(t *testing.T) {
	// M-bias: X <- A -> W <- B -> Y plus X -> Y. The empty set is valid; W
	// alone is NOT (conditioning on the collider W opens A-W-B).
	g := NewGraph()
	g.AddEdge("A", "X")
	g.AddEdge("A", "W")
	g.AddEdge("B", "W")
	g.AddEdge("B", "Y")
	g.AddEdge("X", "Y")
	if !g.IsBackdoorSet("X", []string{"Y"}, nil) {
		t.Error("M-diagram: empty set is valid")
	}
	if g.IsBackdoorSet("X", []string{"Y"}, []string{"W"}) {
		t.Error("M-diagram: {W} opens the collider path")
	}
	if !g.IsBackdoorSet("X", []string{"Y"}, []string{"W", "A"}) {
		t.Error("M-diagram: {W, A} re-blocks the opened path")
	}
	set, ok := g.BackdoorSet("X", []string{"Y"}, g.Nodes())
	if !ok || len(set) != 0 {
		t.Errorf("minimal backdoor should be empty, got %v", set)
	}
}

func TestBackdoorNoValidSet(t *testing.T) {
	// Hidden confounder reachable only through a node excluded from the
	// candidates: no valid set exists among candidates.
	g := confounderGraph()
	_, ok := g.BackdoorSet("X", []string{"Y"}, []string{})
	if ok {
		t.Error("no candidates: should report failure")
	}
}

// Property: a minimized backdoor set is always valid, and removing any
// single element breaks validity (minimality).
func TestBackdoorMinimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		g := randomDAG(rng, 8, 0.3)
		nodes := g.Nodes()
		if len(nodes) < 2 {
			return true
		}
		x, y := nodes[0], nodes[len(nodes)-1]
		if x == y {
			return true
		}
		set, ok := g.BackdoorSet(x, []string{y}, nodes)
		if !ok {
			return true
		}
		if !g.IsBackdoorSet(x, []string{y}, set) {
			return false
		}
		for i := range set {
			trial := append(append([]string{}, set[:i]...), set[i+1:]...)
			if g.IsBackdoorSet(x, []string{y}, trial) {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomDAG builds a DAG over n nodes with edges only from lower to higher
// indices (guaranteeing acyclicity).
func randomDAG(rng *stats.RNG, n int, p float64) *Graph {
	g := NewGraph()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		g.AddNode(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(names[i], names[j])
			}
		}
	}
	return g
}

// Property: random lower-to-higher DAGs are acyclic and topological order is
// consistent with edges.
func TestRandomDAGTopoProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(stats.NewRNG(seed), 10, 0.4)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, g.Len())
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			fi, _ := g.ID(e[0])
			ti, _ := g.ID(e[1])
			if pos[fi] >= pos[ti] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Sets() != 10 {
		t.Errorf("Sets = %d", uf.Sets())
	}
	uf.Union(0, 1)
	uf.Union(1, 2)
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Error("Same misbehaves")
	}
	if uf.Sets() != 8 {
		t.Errorf("Sets = %d", uf.Sets())
	}
	if uf.Union(0, 2) {
		t.Error("re-union should report no merge")
	}
	groups := uf.Groups()
	sizes := []int{}
	for _, m := range groups {
		sizes = append(sizes, len(m))
	}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{1, 1, 1, 1, 1, 1, 1, 3}) {
		t.Errorf("group sizes = %v", sizes)
	}
}

// Property: union-find connectivity equals reachability of the union
// operations applied as undirected edges.
func TestUnionFindConnectivityProperty(t *testing.T) {
	f := func(pairsRaw []uint8) bool {
		const n = 12
		uf := NewUnionFind(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i+1 < len(pairsRaw); i += 2 {
			a, b := int(pairsRaw[i])%n, int(pairsRaw[i+1])%n
			uf.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd-Warshall-style closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			reach[i][i] = true
			copy(reach[i], adj[i])
			reach[i][i] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(i, j) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
