package hyper

import (
	"math"
	"sync"
	"testing"

	"hyper/internal/dataset"
)

// TestSessionConcurrentQueries hammers one cache-sharing Session from many
// goroutines running what-if, explain, and how-to queries interleaved with
// SetOptions calls; under -race this is the public-API concurrency stress
// test. Every goroutine must observe the same values as a serial run.
func TestSessionConcurrentQueries(t *testing.T) {
	g := dataset.GermanSyn(2000, 7)
	s := NewSessionWithCache(g.DB, g.Model, NewCacheBounded(128))
	opts := Options{Seed: 7}
	s.SetOptions(opts)

	whatifs := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		`USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
	}
	want := make([]float64, len(whatifs))
	for i, src := range whatifs {
		res, err := s.WhatIf(src)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Value
	}
	const howtoSrc = `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`
	wantHowTo, err := s.HowTo(howtoSrc)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				switch w % 4 {
				case 0, 1:
					k := (w + it) % len(whatifs)
					res, err := s.WhatIf(whatifs[k])
					if err != nil {
						fail(err)
						return
					}
					if math.Abs(res.Value-want[k]) > 1e-9 {
						t.Errorf("whatif %d: got %v want %v", k, res.Value, want[k])
					}
				case 2:
					if _, err := s.Explain(whatifs[it%len(whatifs)]); err != nil {
						fail(err)
						return
					}
					// Snapshot semantics: writing the same options back must
					// not disturb queries in flight.
					s.SetOptions(opts)
				case 3:
					res, err := s.HowTo(howtoSrc)
					if err != nil {
						fail(err)
						return
					}
					if math.Abs(res.Objective-wantHowTo.Objective) > 1e-9 {
						t.Errorf("howto objective: got %v want %v", res.Objective, wantHowTo.Objective)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Cache().Stats()
	if st.Hits == 0 {
		t.Error("concurrent repeat queries recorded no cache hits")
	}
}

// TestSessionCacheSpeedsUpRepeatWhatIf checks the serving-path property the
// daemon relies on: a repeated what-if against a cache-sharing session skips
// view construction and estimator training, so the warm run is measurably
// faster than the cold run.
func TestSessionCacheSpeedsUpRepeatWhatIf(t *testing.T) {
	g := dataset.GermanSyn(8000, 7)
	s := NewSessionWithCache(g.DB, g.Model, nil)
	s.SetOptions(Options{Seed: 7})
	const src = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`

	cold, err := s.WhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.WhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value != cold.Value {
		t.Fatalf("warm value %v != cold value %v", warm.Value, cold.Value)
	}
	if warm.TrainTime >= cold.TrainTime && cold.TrainTime > 0 {
		t.Errorf("warm training %v not faster than cold %v (estimator not reused?)", warm.TrainTime, cold.TrainTime)
	}
	if warm.Total > cold.Total {
		t.Errorf("warm run %v slower than cold run %v", warm.Total, cold.Total)
	}
	st := s.Cache().Stats()
	if st.Hits < 3 {
		t.Errorf("warm run hit the cache %d times, want >= 3 (view, blocks, estimator)", st.Hits)
	}

	// A cache-less session must not share artifacts across queries.
	plain := NewSession(g.DB, g.Model)
	if plain.Cache() != nil {
		t.Error("NewSession should not attach a cache")
	}
}
