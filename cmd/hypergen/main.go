// Command hypergen emits the synthetic evaluation datasets (Section 5.1) as
// CSV files, plus a text description of their causal models, so they can be
// inspected or loaded into other tools (and back into hyperql via -model).
//
// Usage:
//
//	hypergen -dataset german-syn -rows 20000 -out ./data
//	hypergen -dataset student-syn -rows 10000 -out ./data
//	hypergen -dataset amazon -rows 3000 -out ./data
//	hypergen -dataset adult -rows 32000 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/relation"
)

func main() {
	name := flag.String("dataset", "german-syn", "german-syn, german-syn-cont, german, adult, amazon, student-syn, toy")
	rows := flag.Int("rows", 20000, "number of rows (products/students for the two-table datasets)")
	seed := flag.Int64("seed", 7, "random seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var db *relation.Database
	var model *causal.Model
	switch *name {
	case "german-syn":
		d := dataset.GermanSyn(*rows, *seed)
		db, model = d.DB, d.Model
	case "german-syn-cont":
		d := dataset.GermanSynContinuous(*rows, *seed)
		db, model = d.DB, d.Model
	case "german":
		d := dataset.GermanLike(*rows, *seed)
		db, model = d.DB, d.Model
	case "adult":
		d := dataset.AdultSyn(*rows, *seed)
		db, model = d.DB, d.Model
	case "amazon":
		d := dataset.AmazonSyn(*rows, 18, *seed)
		db, model = d.DB, d.Model
	case "student-syn":
		d := dataset.StudentSyn(*rows, 5, *seed)
		db, model = d.DB, d.Model
	case "toy":
		db, model = dataset.Toy()
	default:
		fmt.Fprintf(os.Stderr, "hypergen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "hypergen:", err)
		os.Exit(1)
	}
	for _, rn := range db.Names() {
		path := filepath.Join(*out, strings.ToLower(*name)+"_"+strings.ToLower(rn)+".csv")
		if err := db.Relation(rn).SaveCSV(path); err != nil {
			fmt.Fprintln(os.Stderr, "hypergen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, db.Relation(rn).Len())
	}
	// Causal model description: one edge per line, cross edges annotated.
	mpath := filepath.Join(*out, strings.ToLower(*name)+"_model.txt")
	f, err := os.Create(mpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypergen:", err)
		os.Exit(1)
	}
	for _, e := range model.Attr.Edges() {
		fmt.Fprintf(f, "%s -> %s\n", e[0], e[1])
	}
	for _, ce := range model.Cross {
		fmt.Fprintf(f, "CROSS %s.%s -> %s.%s GROUP %s\n", ce.FromRel, ce.FromAttr, ce.ToRel, ce.ToAttr, ce.GroupBy)
	}
	for _, fk := range db.ForeignKeys() {
		fmt.Fprintf(f, "FK %s.%s -> %s.%s\n", fk.Child, fk.ChildCol, fk.Parent, fk.ParentCol)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hypergen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", mpath)
}
