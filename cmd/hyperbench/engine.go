package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
)

// engineBenchResult is the machine-readable engine benchmark, written to
// BENCH_engine.json so successive PRs can track the what-if/how-to hot path
// (cold latency, training volume, allocation behaviour) alongside the
// serving-path numbers in BENCH_serve.json.
type engineBenchResult struct {
	Scale      float64 `json:"scale"`
	Rows       int     `json:"rows"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// ColdWhatIfMs is the median uncached evaluation of the discrete
	// (freq-estimator) serving query; ColdWhatIfForMs adds a FOR predicate
	// (two regressors via inclusion-exclusion).
	ColdWhatIfMs    float64 `json:"cold_whatif_ms"`
	ColdWhatIfForMs float64 `json:"cold_whatif_for_ms"`
	TrainedModels   int     `json:"trained_models"`
	// HowToMs is a four-attribute how-to (candidate scoring dominates);
	// HowToSerialMs is the same query at GOMAXPROCS=1, so the ratio shows
	// how candidate scoring scales with cores.
	HowToMs         float64 `json:"howto_ms"`
	HowToSerialMs   float64 `json:"howto_serial_ms"`
	HowToCandidates int     `json:"howto_candidates"`
	// Estimator fit+predict micro-costs over the encoded German view
	// (testing.Benchmark; allocs/op is the regression tripwire).
	FreqFitNsPerOp         int64 `json:"freq_fit_ns_per_op"`
	FreqFitAllocsPerOp     int64 `json:"freq_fit_allocs_per_op"`
	FreqPredictNsPerOp     int64 `json:"freq_predict_ns_per_op"`
	FreqPredictAllocsPerOp int64 `json:"freq_predict_allocs_per_op"`
}

const engineBenchReps = 5

// medianMs runs fn reps times and returns the median wall time in ms.
func medianMs(reps int, fn func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start))/float64(time.Millisecond))
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// runEngine benchmarks the evaluation hot path off the HTTP stack: cold
// what-if latency, how-to wall time (parallel and serial), and estimator
// fit/predict allocation counts, written to out as JSON.
func runEngine(scale float64, seed int64, out string) error {
	g := dataset.GermanSyn(int(5000*scale+0.5), seed)
	rel := g.DB.Relation("German")
	res := engineBenchResult{
		Scale:      scale,
		Rows:       rel.Len(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	parse := func(src string) *hyperql.WhatIf {
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			panic(err)
		}
		return q
	}
	qCold := parse(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	qFor := parse(`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`)

	var last *engine.Result
	cold, err := medianMs(engineBenchReps, func() error {
		r, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{Seed: seed})
		last = r
		return err
	})
	if err != nil {
		return err
	}
	res.ColdWhatIfMs = cold
	res.TrainedModels = last.TrainedModels

	res.ColdWhatIfForMs, err = medianMs(engineBenchReps, func() error {
		_, err := engine.Evaluate(g.DB, g.Model, qFor, engine.Options{Seed: seed})
		return err
	})
	if err != nil {
		return err
	}

	qHow, err := hyperql.ParseHowTo(`
		USE German
		HOWTOUPDATE Status, Savings, Housing, CreditAmount
		TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		return err
	}
	var howRes *howto.Result
	res.HowToMs, err = medianMs(engineBenchReps, func() error {
		r, err := howto.Evaluate(g.DB, g.Model, qHow, howto.Options{Engine: engine.Options{Seed: seed}})
		howRes = r
		return err
	})
	if err != nil {
		return err
	}
	res.HowToCandidates = howRes.Candidates
	prev := runtime.GOMAXPROCS(1)
	res.HowToSerialMs, err = medianMs(engineBenchReps, func() error {
		_, err := howto.Evaluate(g.DB, g.Model, qHow, howto.Options{Engine: engine.Options{Seed: seed}})
		return err
	})
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return err
	}

	// Estimator fit+predict micro-benchmark over the encoded view, the same
	// features a discrete what-if conditions on.
	featCols := []string{"Status", "Age", "Sex", "Savings", "Housing"}
	enc := ml.NewEncoder(rel, featCols)
	X := enc.Matrix(rel)
	y := make([]float64, rel.Len())
	ci := rel.Schema().MustIndex("Credit")
	for i := 0; i < rel.Len(); i++ {
		if rel.Row(i)[ci].AsInt() == 1 {
			y[i] = 1
		}
	}
	fit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if f := ml.FitFreqKeep(X, y, 1); f.Support() == 0 {
				b.Fatal("empty support")
			}
		}
	})
	res.FreqFitNsPerOp = fit.NsPerOp()
	res.FreqFitAllocsPerOp = fit.AllocsPerOp()
	fitted := ml.FitFreqKeep(X, y, 1)
	pred := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := fitted.Predict(X[i%len(X)]); v < 0 {
				b.Fatal("negative mean")
			}
		}
	})
	res.FreqPredictNsPerOp = pred.NsPerOp()
	res.FreqPredictAllocsPerOp = pred.AllocsPerOp()

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("rows=%d  cold=%.2fms cold+for=%.2fms models=%d  howto=%.1fms serial=%.1fms (%d candidates)\n",
		res.Rows, res.ColdWhatIfMs, res.ColdWhatIfForMs, res.TrainedModels,
		res.HowToMs, res.HowToSerialMs, res.HowToCandidates)
	fmt.Printf("freq fit %d ns/op %d allocs/op  predict %d ns/op %d allocs/op\n",
		res.FreqFitNsPerOp, res.FreqFitAllocsPerOp, res.FreqPredictNsPerOp, res.FreqPredictAllocsPerOp)
	fmt.Printf("wrote %s\n", out)
	return nil
}
