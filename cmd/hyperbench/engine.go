package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/obs"
	"hyper/internal/plan"
)

// engineBenchResult is the machine-readable engine benchmark, written to
// BENCH_engine.json so successive PRs can track the what-if/how-to hot path
// (cold latency, training volume, allocation behaviour) alongside the
// serving-path numbers in BENCH_serve.json.
type engineBenchResult struct {
	Scale float64 `json:"scale"`
	Rows  int     `json:"rows"`
	// Execution environment. Wall-clock numbers are only comparable across
	// runs on comparable hardware; cmd/benchguard prints these in its
	// verdict and arms the latency gate only when GOMAXPROCS matches, so a
	// 1-core CI runner's flat shard sweep is never misread as a regression
	// against a multi-core baseline.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	// Shards is the -shards worker fan-out used for the headline metrics
	// (0 = GOMAXPROCS).
	Shards int `json:"shards"`
	// ColdWhatIfMs is the median uncached evaluation of the discrete
	// (freq-estimator) serving query; ColdWhatIfForMs adds a FOR predicate
	// (two regressors via inclusion-exclusion).
	ColdWhatIfMs    float64 `json:"cold_whatif_ms"`
	ColdWhatIfForMs float64 `json:"cold_whatif_for_ms"`
	TrainedModels   int     `json:"trained_models"`
	// ColdWhatIfTracedMs is the same cold query evaluated under an active
	// obs trace (reps interleaved with untraced ones so machine drift hits
	// both sides equally); TracingOverheadPct is the relative cost of the
	// span instrumentation, gated <2% by cmd/benchguard.
	ColdWhatIfTracedMs float64 `json:"cold_whatif_traced_ms"`
	TracingOverheadPct float64 `json:"tracing_overhead_pct"`
	// ColdWhatIfMeteredMs is the same cold query with a cost meter riding the
	// context (every charge point live); MeteringOverheadPct is the relative
	// cost of the per-query accounting, gated <2% by cmd/benchguard alongside
	// the tracing gate.
	ColdWhatIfMeteredMs float64 `json:"cold_whatif_metered_ms"`
	MeteringOverheadPct float64 `json:"metering_overhead_pct"`
	// ColdWhatIfPlannedMs is the cold query through the cost-based planner
	// with fresh caches every rep (stats collection + plan compile + pushdown
	// all paid), interleaved with the unplanned path; gated like
	// cold_whatif_ms by cmd/benchguard. WarmPlanCacheMs is the same query
	// repeated over shared engine + plan caches (plan-cache hit, view and
	// estimators memoized); PlanCacheSpeedup = planned-cold / warm, gated
	// >= 1.5x within-run. Planned, warm, and unplanned results are
	// bit-identical — checked at shards=1 and 4, not assumed.
	ColdWhatIfPlannedMs float64 `json:"cold_whatif_planned_ms"`
	WarmPlanCacheMs     float64 `json:"warm_plan_cache_ms"`
	PlanCacheSpeedup    float64 `json:"plan_cache_speedup"`
	// HowToMs is a four-attribute how-to (candidate scoring dominates);
	// HowToSerialMs is the same query at GOMAXPROCS=1, so the ratio shows
	// how candidate scoring scales with cores.
	HowToMs         float64 `json:"howto_ms"`
	HowToSerialMs   float64 `json:"howto_serial_ms"`
	HowToCandidates int     `json:"howto_candidates"`
	// Estimator fit+predict micro-costs over the encoded German view
	// (testing.Benchmark; allocs/op is the regression tripwire).
	FreqFitNsPerOp         int64 `json:"freq_fit_ns_per_op"`
	FreqFitAllocsPerOp     int64 `json:"freq_fit_allocs_per_op"`
	FreqPredictNsPerOp     int64 `json:"freq_predict_ns_per_op"`
	FreqPredictAllocsPerOp int64 `json:"freq_predict_allocs_per_op"`
	// ShardSweep records the cold what-if latency under a worker fan-out of
	// 1/2/4/8 at 5k and 50k rows. Values are bit-identical across the sweep
	// (the shard plan is canonical); only wall time moves, and only as far
	// as the hardware allows — single-core machines record a flat sweep.
	ShardSweep []shardSweepPoint `json:"shard_sweep"`
}

// shardSweepPoint is one (rows, shards) cell of the sweep.
type shardSweepPoint struct {
	Rows   int `json:"rows"`
	Shards int `json:"shards"`
	// PlanShards is the canonical plan size at this row count (the worker
	// fan-out is clamped to it).
	PlanShards   int     `json:"plan_shards"`
	ColdWhatIfMs float64 `json:"cold_whatif_ms"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
}

const engineBenchReps = 5

// tracingOverheadReps is higher than engineBenchReps because the tracing
// gate is a percentage of a few milliseconds: the per-side minimum needs
// enough samples for each side to land a rep near its noise floor.
const tracingOverheadReps = 15

// interleavedMs alternates two workloads rep pairs (a,b,a,b,...) and returns
// each side's MINIMUM wall time in ms. Interleaving puts slow-machine drift
// on both sides instead of whichever ran second; the minimum (not median) is
// the estimator because scheduler noise is one-sided additive — each side's
// best rep approaches its intrinsic cost, which is exactly what a
// sub-millisecond overhead comparison needs (run-to-run medians of the same
// workload swing far more than the 2% budget being measured). One untimed
// warmup pair absorbs first-touch costs (page faults, branch predictors)
// that would otherwise be billed entirely to side a.
func interleavedMs(reps int, a, b func() error) (aMs, bMs float64, err error) {
	if err := a(); err != nil {
		return 0, 0, err
	}
	if err := b(); err != nil {
		return 0, 0, err
	}
	aMs, bMs = math.Inf(1), math.Inf(1)
	for i := 0; i < reps; i++ {
		for _, side := range []struct {
			fn   func() error
			best *float64
		}{{a, &aMs}, {b, &bMs}} {
			start := time.Now()
			if err := side.fn(); err != nil {
				return 0, 0, err
			}
			if ms := float64(time.Since(start)) / float64(time.Millisecond); ms < *side.best {
				*side.best = ms
			}
		}
	}
	return aMs, bMs, nil
}

// medianMs runs fn reps times and returns the median wall time in ms.
func medianMs(reps int, fn func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start))/float64(time.Millisecond))
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// runEngine benchmarks the evaluation hot path off the HTTP stack: cold
// what-if latency, how-to wall time (parallel and serial), estimator
// fit/predict allocation counts, and a shard sweep, written to out as JSON.
func runEngine(scale float64, seed int64, shards int, out string) error {
	g := dataset.GermanSyn(int(5000*scale+0.5), seed)
	rel := g.DB.Relation("German")
	res := engineBenchResult{
		Scale:      scale,
		Rows:       rel.Len(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Shards:     shards,
	}

	parse := func(src string) *hyperql.WhatIf {
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			panic(err)
		}
		return q
	}
	qCold := parse(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	qFor := parse(`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`)

	var last *engine.Result
	cold, err := medianMs(engineBenchReps, func() error {
		r, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		last = r
		return err
	})
	if err != nil {
		return err
	}
	res.ColdWhatIfMs = cold
	res.TrainedModels = last.TrainedModels

	// Tracing overhead: the identical cold evaluation with and without an
	// active trace, reps interleaved (A/B/A/B...) so cache warmup and CPU
	// frequency drift bias neither side. Spans are execution-only, so the
	// traced result must stay bit-identical — checked, not assumed.
	tracedMs, untracedMs, err := interleavedMs(tracingOverheadReps, func() error {
		tr := obs.NewTrace("bench_whatif")
		r, err := engine.EvaluateContext(tr.Context(context.Background()), g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		tr.Finish()
		if err == nil && r.Value != last.Value {
			return fmt.Errorf("traced evaluation diverged: %v != %v", r.Value, last.Value)
		}
		return err
	}, func() error {
		_, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		return err
	})
	if err != nil {
		return err
	}
	res.ColdWhatIfTracedMs = tracedMs
	res.TracingOverheadPct = (tracedMs - untracedMs) / untracedMs * 100

	// Metering overhead: the same A/B protocol with a cost meter instead of a
	// trace. The meter is execution-only like spans, so the metered result
	// must stay bit-identical — and its counters must match the authoritative
	// result fields, otherwise the overhead number is measuring a broken meter.
	meteredMs, unmeteredMs, err := interleavedMs(tracingOverheadReps, func() error {
		meter := obs.NewMeter()
		r, err := engine.EvaluateContext(obs.ContextWithMeter(context.Background(), meter),
			g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		if err != nil {
			return err
		}
		if r.Value != last.Value {
			return fmt.Errorf("metered evaluation diverged: %v != %v", r.Value, last.Value)
		}
		if mj := meter.JSON(); mj.TuplesEvaluated != uint64(r.ViewRows) || mj.ShardsRun != uint64(r.ShardPlan) {
			return fmt.Errorf("meter miscounted: tuples=%d shards=%d vs rows=%d plan=%d",
				mj.TuplesEvaluated, mj.ShardsRun, r.ViewRows, r.ShardPlan)
		}
		return nil
	}, func() error {
		_, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		return err
	})
	if err != nil {
		return err
	}
	res.ColdWhatIfMeteredMs = meteredMs
	res.MeteringOverheadPct = (meteredMs - unmeteredMs) / unmeteredMs * 100

	res.ColdWhatIfForMs, err = medianMs(engineBenchReps, func() error {
		_, err := engine.Evaluate(g.DB, g.Model, qFor, engine.Options{Seed: seed, Shards: shards})
		return err
	})
	if err != nil {
		return err
	}

	// Planner cold/warm pair. Cold: fresh engine + plan caches every rep, so
	// each one pays stats collection, plan compilation, and the pushdown scan
	// — interleaved with the unplanned path so drift hits both sides.
	// Planning is execution-only, so the planned value must stay
	// bit-identical to the unplanned one.
	plannedMs, unplannedMs, err := interleavedMs(engineBenchReps, func() error {
		r, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{
			Seed: seed, Shards: shards, Cache: engine.NewCache(), Plans: plan.NewCache(0),
		})
		if err != nil {
			return err
		}
		if r.PlanCacheHit {
			return fmt.Errorf("cold planned rep hit the plan cache (caches leaked across reps)")
		}
		if r.Value != last.Value || r.Sum != last.Sum || r.Count != last.Count {
			return fmt.Errorf("planned evaluation diverged: %v != %v", r.Value, last.Value)
		}
		return nil
	}, func() error {
		_, err := engine.Evaluate(g.DB, g.Model, qCold, engine.Options{Seed: seed, Shards: shards})
		return err
	})
	if err != nil {
		return err
	}
	res.ColdWhatIfPlannedMs = plannedMs

	// Warm: one shared cache pair, one untimed compile-and-train rep, then
	// timed repeats that must be served from the plan cache (hit counter and
	// result identity both checked, at the headline fan-out and at 1 and 4).
	warmOpts := engine.Options{Seed: seed, Shards: shards, Cache: engine.NewCache(), Plans: plan.NewCache(0)}
	if _, err := engine.Evaluate(g.DB, g.Model, qCold, warmOpts); err != nil {
		return err
	}
	res.WarmPlanCacheMs, err = medianMs(engineBenchReps, func() error {
		r, err := engine.Evaluate(g.DB, g.Model, qCold, warmOpts)
		if err != nil {
			return err
		}
		if !r.PlanCacheHit {
			return fmt.Errorf("warm repeat missed the plan cache")
		}
		if r.Value != last.Value || r.Sum != last.Sum || r.Count != last.Count {
			return fmt.Errorf("warm planned evaluation diverged: %v != %v", r.Value, last.Value)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if st := warmOpts.Plans.Stats(); st.Hits == 0 {
		return fmt.Errorf("plan cache recorded no hits across warm reps: %+v", st)
	}
	for _, sw := range []int{1, 4} {
		o := warmOpts
		o.Shards = sw
		r, err := engine.Evaluate(g.DB, g.Model, qCold, o)
		if err != nil {
			return err
		}
		if r.Value != last.Value || r.Sum != last.Sum || r.Count != last.Count {
			return fmt.Errorf("warm planned evaluation at shards=%d diverged: %v != %v", sw, r.Value, last.Value)
		}
	}
	if res.WarmPlanCacheMs > 0 {
		res.PlanCacheSpeedup = res.ColdWhatIfPlannedMs / res.WarmPlanCacheMs
	}

	qHow, err := hyperql.ParseHowTo(`
		USE German
		HOWTOUPDATE Status, Savings, Housing, CreditAmount
		TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		return err
	}
	var howRes *howto.Result
	res.HowToMs, err = medianMs(engineBenchReps, func() error {
		r, err := howto.Evaluate(g.DB, g.Model, qHow, howto.Options{Engine: engine.Options{Seed: seed, Shards: shards}})
		howRes = r
		return err
	})
	if err != nil {
		return err
	}
	res.HowToCandidates = howRes.Candidates
	prev := runtime.GOMAXPROCS(1)
	res.HowToSerialMs, err = medianMs(engineBenchReps, func() error {
		_, err := howto.Evaluate(g.DB, g.Model, qHow, howto.Options{Engine: engine.Options{Seed: seed}})
		return err
	})
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return err
	}

	// Estimator fit+predict micro-benchmark over the encoded view, the same
	// features a discrete what-if conditions on.
	featCols := []string{"Status", "Age", "Sex", "Savings", "Housing"}
	enc := ml.NewEncoder(rel, featCols)
	X := enc.Matrix(rel)
	y := make([]float64, rel.Len())
	ci := rel.Schema().MustIndex("Credit")
	for i := 0; i < rel.Len(); i++ {
		if rel.Row(i)[ci].AsInt() == 1 {
			y[i] = 1
		}
	}
	fit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if f := ml.FitFreqKeep(X, y, 1); f.Support() == 0 {
				b.Fatal("empty support")
			}
		}
	})
	res.FreqFitNsPerOp = fit.NsPerOp()
	res.FreqFitAllocsPerOp = fit.AllocsPerOp()
	fitted := ml.FitFreqKeep(X, y, 1)
	pred := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := fitted.Predict(X[i%len(X)]); v < 0 {
				b.Fatal("negative mean")
			}
		}
	})
	res.FreqPredictNsPerOp = pred.NsPerOp()
	res.FreqPredictAllocsPerOp = pred.AllocsPerOp()

	// Shard sweep: cold what-if under increasing worker fan-out at two
	// dataset sizes. The engine guarantees identical values across the
	// sweep; any value drift here is a determinism bug, so it is checked.
	var baseline [2]float64
	for si, size := range []int{5000, 50000} {
		gs := dataset.GermanSyn(size, seed)
		for _, sw := range []int{1, 2, 4, 8} {
			var r *engine.Result
			ms, err := medianMs(3, func() error {
				var err error
				r, err = engine.Evaluate(gs.DB, gs.Model, qCold, engine.Options{Seed: seed, Shards: sw})
				return err
			})
			if err != nil {
				return err
			}
			if sw == 1 {
				baseline[si] = r.Value
			} else if r.Value != baseline[si] {
				return fmt.Errorf("shard sweep: rows=%d shards=%d value %v != shards=1 value %v",
					size, sw, r.Value, baseline[si])
			}
			res.ShardSweep = append(res.ShardSweep, shardSweepPoint{
				Rows:         size,
				Shards:       sw,
				PlanShards:   r.ShardPlan,
				ColdWhatIfMs: ms,
				TuplesPerSec: float64(size) / (ms / 1000),
			})
		}
	}

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("rows=%d  cold=%.2fms cold+for=%.2fms models=%d  howto=%.1fms serial=%.1fms (%d candidates)\n",
		res.Rows, res.ColdWhatIfMs, res.ColdWhatIfForMs, res.TrainedModels,
		res.HowToMs, res.HowToSerialMs, res.HowToCandidates)
	fmt.Printf("tracing: cold traced=%.2fms untraced=%.2fms overhead=%+.2f%%\n",
		res.ColdWhatIfTracedMs, untracedMs, res.TracingOverheadPct)
	fmt.Printf("metering: cold metered=%.2fms unmetered=%.2fms overhead=%+.2f%%\n",
		res.ColdWhatIfMeteredMs, unmeteredMs, res.MeteringOverheadPct)
	fmt.Printf("planner: cold planned=%.2fms unplanned=%.2fms warm=%.3fms speedup=%.1fx\n",
		res.ColdWhatIfPlannedMs, unplannedMs, res.WarmPlanCacheMs, res.PlanCacheSpeedup)
	fmt.Printf("freq fit %d ns/op %d allocs/op  predict %d ns/op %d allocs/op\n",
		res.FreqFitNsPerOp, res.FreqFitAllocsPerOp, res.FreqPredictNsPerOp, res.FreqPredictAllocsPerOp)
	for _, p := range res.ShardSweep {
		fmt.Printf("sweep rows=%-6d shards=%d (plan %d): cold=%.2fms %.0f tuples/s\n",
			p.Rows, p.Shards, p.PlanShards, p.ColdWhatIfMs, p.TuplesPerSec)
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
