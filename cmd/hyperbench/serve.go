package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"hyper/internal/server"
)

// serveBenchResult is the machine-readable serving benchmark, written to
// BENCH_serve.json so successive PRs can track the serving-path trajectory.
type serveBenchResult struct {
	Scale float64 `json:"scale"`
	Rows  int     `json:"rows"`
	// Execution environment (see engineBenchResult): recorded so a baseline
	// from one machine is never silently compared against another.
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	GoVersion   string  `json:"go_version"`
	Queries     int     `json:"queries"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"queries_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	// ColdMs/WarmMs isolate the cache effect: the same what-if query
	// evaluated on an empty cache vs. repeated against the warm cache.
	ColdMs       float64 `json:"cold_ms"`
	WarmMs       float64 `json:"warm_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	// Async path: the same workload submitted through POST /v1/jobs and
	// polled to completion, plus one brute-force how-to job cancelled
	// mid-solve. Wait quantiles come from the server's job gauges.
	AsyncJobs      int     `json:"async_jobs"`
	AsyncJPS       float64 `json:"async_jobs_per_sec"`
	AsyncP50WaitMs float64 `json:"async_p50_wait_ms"`
	AsyncP95WaitMs float64 `json:"async_p95_wait_ms"`
	AsyncCancelMs  float64 `json:"async_cancel_ms"`
	AsyncQueued    int     `json:"async_queued_end"`
	AsyncCompleted uint64  `json:"async_completed"`
	AsyncCancelled uint64  `json:"async_cancelled"`
	AsyncRejected  uint64  `json:"async_rejected"`
}

// serveQueries is the steady-state workload: four what-if templates sharing
// a session, so the artifact cache sees both hits (repeats) and distinct
// entries (different USE/WHEN/FOR identities).
var serveQueries = []string{
	`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
	`USE German UPDATE(Status) = 2 OUTPUT COUNT(Credit = 1)`,
	`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
	`USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
}

// runServe benchmarks the HTTP serving path end to end: a real listener, a
// preloaded german session, nQueries requests fanned across conc client
// goroutines, then the server's own /v1/stats for the cache hit rate.
func runServe(scale float64, seed int64, nQueries, conc int, out string) error {
	if nQueries <= 0 || conc <= 0 {
		return fmt.Errorf("serve: -serve-queries and -serve-conc must be positive (got %d, %d)", nQueries, conc)
	}
	srv := server.New(server.Config{
		// The async phase submits the whole workload up front; size the
		// queue and worker pool to match rather than exercising admission
		// control (the server tests pin the 429 path).
		JobWorkers:     conc,
		JobQueueDepth:  nQueries + 16,
		JobsPerSession: -1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	post := func(path string, body any, dst any) error {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, payload)
		}
		if dst != nil {
			return json.Unmarshal(payload, dst)
		}
		return nil
	}

	var info server.SessionInfo
	err = post("/v1/sessions", server.CreateSessionRequest{
		Name:    "bench",
		Dataset: "german",
		Scale:   scale,
		Seed:    seed,
		Options: &server.SessionOptions{Seed: seed},
	}, &info)
	if err != nil {
		return err
	}

	// Cold vs. warm: the first evaluation pays view + training, the repeat
	// is served from the shared cache.
	cold := time.Now()
	if err := post("/v1/whatif", server.QueryRequest{Session: "bench", Query: serveQueries[0]}, nil); err != nil {
		return err
	}
	coldMs := float64(time.Since(cold)) / float64(time.Millisecond)
	warm := time.Now()
	if err := post("/v1/whatif", server.QueryRequest{Session: "bench", Query: serveQueries[0]}, nil); err != nil {
		return err
	}
	warmMs := float64(time.Since(warm)) / float64(time.Millisecond)

	// Steady state: nQueries requests over conc goroutines.
	latencies := make([]time.Duration, nQueries)
	errs := make(chan error, conc)
	var wg sync.WaitGroup
	// Buffered and filled up front: workers bail out on their first error,
	// and an unbuffered feed would leave the producer blocked forever once
	// every worker has died.
	idx := make(chan int, nQueries)
	for i := 0; i < nQueries; i++ {
		idx <- i
	}
	close(idx)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				err := post("/v1/whatif", server.QueryRequest{
					Session: "bench",
					Query:   serveQueries[i%len(serveQueries)],
				}, nil)
				latencies[i] = time.Since(t0)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) float64 {
		d := latencies[int(q*float64(len(latencies)-1))]
		return float64(d) / float64(time.Millisecond)
	}

	// Async phase: the same workload through the job API — submit all jobs,
	// then poll each to completion.
	getJob := func(id string) (server.JobInfo, error) {
		var info server.JobInfo
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return info, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return info, fmt.Errorf("poll %s: status %d", id, resp.StatusCode)
		}
		return info, json.NewDecoder(resp.Body).Decode(&info)
	}
	isTerminal := func(state string) bool {
		return state == "done" || state == "failed" || state == "cancelled" || state == "expired"
	}
	asyncStart := time.Now()
	ids := make([]string, 0, nQueries)
	for i := 0; i < nQueries; i++ {
		var job server.JobInfo
		if err := post("/v1/jobs", server.JobRequest{
			Session: "bench",
			Query:   serveQueries[i%len(serveQueries)],
		}, &job); err != nil {
			return err
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		for {
			info, err := getJob(id)
			if err != nil {
				return err
			}
			if isTerminal(info.State) {
				if info.State != "done" {
					return fmt.Errorf("job %s finished as %s: %s", id, info.State, info.Error)
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	asyncElapsed := time.Since(asyncStart)

	// Cancellation round-trip: a brute-force how-to job cancelled as soon
	// as it runs; AsyncCancelMs is submit -> observed-cancelled wall time.
	cancelStart := time.Now()
	var brute server.JobInfo
	err = post("/v1/jobs", server.JobRequest{
		Session: "bench", Kind: "howto", Method: "brute",
		Query: `USE German HOWTOUPDATE Status, Savings, Housing, CreditAmount TOMAXIMIZE COUNT(Credit = 1)`,
	}, &brute)
	if err != nil {
		return err
	}
	for {
		info, err := getJob(brute.ID)
		if err != nil {
			return err
		}
		if info.State == "running" || isTerminal(info.State) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	req, err := http.NewRequest("DELETE", base+"/v1/jobs/"+brute.ID, nil)
	if err != nil {
		return err
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		return err
	} else {
		resp.Body.Close()
	}
	for {
		info, err := getJob(brute.ID)
		if err != nil {
			return err
		}
		if isTerminal(info.State) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelMs := float64(time.Since(cancelStart)) / float64(time.Millisecond)

	var stats server.StatsResponse
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return err
	}
	res := serveBenchResult{
		Scale:          scale,
		Rows:           info.Rows,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		GoVersion:      runtime.Version(),
		Queries:        nQueries,
		Concurrency:    conc,
		QPS:            float64(nQueries) / elapsed.Seconds(),
		P50Ms:          quantile(0.50),
		P95Ms:          quantile(0.95),
		ColdMs:         coldMs,
		WarmMs:         warmMs,
		AsyncJobs:      nQueries,
		AsyncJPS:       float64(nQueries) / asyncElapsed.Seconds(),
		AsyncP50WaitMs: stats.Jobs.P50WaitMs,
		AsyncP95WaitMs: stats.Jobs.P95WaitMs,
		AsyncCancelMs:  cancelMs,
		AsyncQueued:    stats.Jobs.Queued,
		AsyncCompleted: stats.Jobs.Completed,
		AsyncCancelled: stats.Jobs.Cancelled,
		AsyncRejected:  stats.Jobs.Rejected,
	}
	for _, s := range stats.Sessions {
		if s.Name == "bench" {
			res.CacheHitRate = s.Cache.HitRate()
			res.CacheEntries = s.Cache.Entries
		}
	}

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("rows=%d queries=%d conc=%d  %.1f q/s  p50=%.2fms p95=%.2fms  cold=%.2fms warm=%.2fms  hit rate %.1f%%\n",
		res.Rows, res.Queries, res.Concurrency, res.QPS, res.P50Ms, res.P95Ms, res.ColdMs, res.WarmMs, 100*res.CacheHitRate)
	fmt.Printf("async: %d jobs  %.1f jobs/s  wait p50=%.2fms p95=%.2fms  cancel rtt=%.2fms  completed=%d cancelled=%d\n",
		res.AsyncJobs, res.AsyncJPS, res.AsyncP50WaitMs, res.AsyncP95WaitMs, res.AsyncCancelMs, res.AsyncCompleted, res.AsyncCancelled)
	fmt.Printf("wrote %s\n", out)
	return nil
}
