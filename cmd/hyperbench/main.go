// Command hyperbench regenerates the tables and figures of the HypeR paper
// (Section 5). Each experiment prints the rows/series the paper reports;
// EXPERIMENTS.md records the comparison against the published shapes.
//
// Usage:
//
//	hyperbench -exp all -scale 0.05
//	hyperbench -exp table1,fig10 -scale 1.0 -seed 42
//
// Experiments: table1, fig6, fig8, fig9, fig10, fig11, fig12, usecases,
// backdoor, howto-quality, all. Scale multiplies the paper's dataset sizes;
// 1.0 reproduces the full 1M-row runs.
//
// The additional "serve" experiment (not part of "all") benchmarks the
// hyperd HTTP serving path — queries/sec, p50/p95 latency, cold vs. cached
// repeat evaluation, cache hit rate — and writes the machine-readable
// BENCH_serve.json (-out) tracking the serving perf trajectory across PRs:
//
//	hyperbench -exp serve -scale 0.5 -serve-queries 200 -serve-conc 8
//
// The "engine" experiment (also not part of "all") benchmarks the evaluation
// hot path off the HTTP stack — cold what-if latency, how-to wall time
// (parallel vs. GOMAXPROCS=1), trained-model counts, estimator fit/predict
// allocations, and a shard sweep (worker fan-out 1/2/4/8 at 5k and 50k
// rows) — and writes BENCH_engine.json (-engine-out):
//
//	hyperbench -exp engine -scale 1.0 -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyper/internal/experiments"
)

var runners = []struct {
	name string
	fn   func(experiments.Config) error
}{
	{"table1", experiments.Table1},
	{"fig6", experiments.Fig6},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"fig12", experiments.Fig12},
	{"usecases", experiments.UseCases},
	{"backdoor", experiments.BackdoorSize},
	{"howto-quality", experiments.HowToQuality},
	{"ablation", experiments.Ablations},
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run (or 'all')")
	scale := flag.Float64("scale", 0.1, "dataset size multiplier relative to the paper (1.0 = full)")
	seed := flag.Int64("seed", 7, "random seed")
	serveQueries := flag.Int("serve-queries", 200, "serve: total requests")
	serveConc := flag.Int("serve-conc", 8, "serve: concurrent clients")
	out := flag.String("out", "BENCH_serve.json", "serve: output path for the machine-readable result")
	engineOut := flag.String("engine-out", "BENCH_engine.json", "engine: output path for the machine-readable result")
	shards := flag.Int("shards", 0, "engine: worker fan-out for the headline metrics (0 = GOMAXPROCS); the shard sweep always runs 1/2/4/8")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, W: os.Stdout}

	ran := 0
	if want["serve"] {
		fmt.Printf("=== serve (scale %.2g) ===\n", *scale)
		start := time.Now()
		if err := runServe(*scale, *seed, *serveQueries, *serveConc, *out); err != nil {
			fmt.Fprintf(os.Stderr, "hyperbench: serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("--- serve done in %s ---\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	if want["engine"] {
		fmt.Printf("=== engine (scale %.2g) ===\n", *scale)
		start := time.Now()
		if err := runEngine(*scale, *seed, *shards, *engineOut); err != nil {
			fmt.Fprintf(os.Stderr, "hyperbench: engine: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("--- engine done in %s ---\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	for _, r := range runners {
		if !want["all"] && !want[r.name] {
			continue
		}
		fmt.Printf("=== %s (scale %.2g) ===\n", r.name, *scale)
		start := time.Now()
		if err := r.fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hyperbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %s ---\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "hyperbench: no experiment matched %q; known: ", *exp)
		for i, r := range runners {
			if i > 0 {
				fmt.Fprint(os.Stderr, ", ")
			}
			fmt.Fprint(os.Stderr, r.name)
		}
		fmt.Fprintln(os.Stderr, ", serve, engine")
		os.Exit(2)
	}
}
