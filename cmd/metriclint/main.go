// Command metriclint is the metric-hygiene gate: it instantiates the real
// coordinator/server and worker registries (the same constructors hyperd
// runs), lints every registered family against the stack's naming scheme
// (hyper_ prefix, counters end _total, help strings present, valid label
// names — see obs.Registry.Lint), and checks that the core series each
// deployment role is documented to serve are actually registered. CI runs it
// on every pull request, so a metric cannot be renamed, dropped, or added
// malformed without failing the build. Duplicate registration panics inside
// obs itself, which this tool surfaces as an ordinary non-zero exit.
//
// Usage:
//
//	go run ./cmd/metriclint
package main

import (
	"fmt"
	"os"

	"hyper/internal/dist"
	"hyper/internal/obs"
	"hyper/internal/server"
)

// Core series per role: the names DESIGN.md and the dashboards depend on.
// Extending the schema is fine; silently losing one of these is not.
var (
	coordinatorCore = []string{
		"hyper_uptime_seconds",
		"hyper_sessions",
		"hyper_requests_total",
		"hyper_request_errors_total",
		"hyper_request_duration_ms",
		"hyper_slow_queries_total",
		"hyper_traces_recorded_total",
		"hyper_engine_cache_hits_total",
		"hyper_engine_cache_misses_total",
		"hyper_plan_cache_hits_total",
		"hyper_plan_cache_misses_total",
		"hyper_plan_cache_evictions_total",
		"hyper_plan_compile_ms",
		"hyper_jobs_queued",
		"hyper_jobs_running",
		"hyper_jobs_completed_total",
		"hyper_whatif_evals_total",
		"hyper_whatif_shards_run_total",
		"hyper_dist_workers_alive",
		"hyper_dist_remote_shards_total",
		"hyper_dist_requeue_events_total",
		"hyper_dist_retries_total",
		"hyper_dist_breaker_state",
		"hyper_dist_workers_restored_total",
		"hyper_dist_persist_errors_total",
		"hyper_fault_injected_total",
		"hyper_server_panics_total",
		"hyper_query_cost_wall_ms",
		"hyper_query_cost_tuples",
		"hyper_query_cost_shards",
		"hyper_go_goroutines",
		"hyper_go_heap_bytes",
		"hyper_build_info",
	}
	workerCore = []string{
		"hyper_worker_evals_total",
		"hyper_worker_eval_shards_total",
		"hyper_worker_fits_total",
		"hyper_worker_frame_bytes_received_total",
		"hyper_worker_frames",
		"hyper_worker_traces_recorded_total",
		"hyper_worker_inflight",
		"hyper_fault_injected_total",
		"hyper_go_goroutines",
		"hyper_go_heap_bytes",
		"hyper_build_info",
	}
)

func check(role string, reg *obs.Registry, core []string) (problems []string) {
	for _, p := range reg.Lint() {
		problems = append(problems, fmt.Sprintf("%s: %s", role, p))
	}
	have := map[string]bool{}
	for _, n := range reg.Names() {
		if have[n] {
			problems = append(problems, fmt.Sprintf("%s: duplicate family %s", role, n))
		}
		have[n] = true
	}
	for _, want := range core {
		if !have[want] {
			problems = append(problems, fmt.Sprintf("%s: core series %s is not registered", role, want))
		}
	}
	return problems
}

func main() {
	// Constructing the registries can panic (obs panics on duplicate or
	// malformed registration); report that as a lint failure, not a crash.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "metriclint: FAIL: registration panicked: %v\n", r)
			os.Exit(1)
		}
	}()

	var problems []string
	problems = append(problems, check("coordinator", server.New(server.Config{}).Metrics(), coordinatorCore)...)
	problems = append(problems, check("worker", dist.NewWorker(dist.WorkerConfig{}).Metrics(), workerCore)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metriclint: FAIL: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("metriclint: PASS — coordinator and worker metric schemas are clean")
}
