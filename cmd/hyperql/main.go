// Command hyperql runs HypeRQL what-if and how-to queries against CSV data.
//
// Usage:
//
//	hyperql -table German=german.csv -model german_model.txt \
//	    -query "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)"
//
//	hyperql -table Product=p.csv -table Review=r.csv -model amazon_model.txt \
//	    -file query.hql -mode nb -sample 100000
//
// With no -query/-file, queries are read from stdin, one per line (a
// primitive REPL; end with EOF). The -model file uses the format written by
// cmd/hypergen (edges, CROSS edges, FK declarations). Without -model the
// engine runs in no-background mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyper"
	"hyper/internal/causal"
	"hyper/internal/relation"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	var tables tableFlags
	flag.Var(&tables, "table", "Name=path.csv (repeatable)")
	modelPath := flag.String("model", "", "causal model file (hypergen format)")
	query := flag.String("query", "", "query text")
	file := flag.String("file", "", "file containing one query")
	mode := flag.String("mode", "full", "full, nb, or indep")
	sample := flag.Int("sample", 0, "HypeR-sampled training-sample size (0 = all rows)")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	if len(tables) == 0 {
		fatal("at least one -table Name=path.csv is required")
	}
	db := relation.NewDatabase()
	for _, t := range tables {
		name, path, ok := strings.Cut(t, "=")
		if !ok {
			fatal("bad -table %q; want Name=path.csv", t)
		}
		rel, err := relation.LoadCSV(name, path)
		if err != nil {
			fatal("loading %s: %v", path, err)
		}
		if err := db.Add(rel); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d rows, schema [%s]\n", name, rel.Len(), rel.Schema())
	}

	var model *causal.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal("%v", err)
		}
		var fks []relation.ForeignKey
		model, fks, err = causal.ParseModel(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		for _, fk := range fks {
			if err := db.AddForeignKey(fk); err != nil {
				fatal("%v", err)
			}
		}
		if err := model.Validate(db); err != nil {
			fatal("%v", err)
		}
	}

	s := hyper.NewSession(db, model)
	opts := hyper.Options{SampleSize: *sample, Seed: *seed}
	switch *mode {
	case "full":
		opts.Mode = hyper.ModeFull
	case "nb":
		opts.Mode = hyper.ModeNB
	case "indep":
		opts.Mode = hyper.ModeIndep
	default:
		fatal("unknown -mode %q", *mode)
	}
	s.SetOptions(opts)

	run := func(src string) {
		res, err := s.Query(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		switch r := res.(type) {
		case *hyper.WhatIfResult:
			fmt.Printf("what-if result: %.6g\n  %s\n", r.Value, r)
		case *hyper.HowToResult:
			fmt.Printf("how-to result: %s\n  candidates=%d what-if-evals=%d ip-nodes=%d time=%s\n",
				r, r.Candidates, r.WhatIfEvals, r.IPNodes, r.Total)
		}
	}

	switch {
	case *query != "":
		run(*query)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal("%v", err)
		}
		run(string(b))
	default:
		fmt.Fprintln(os.Stderr, "reading queries from stdin (one per line)")
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			run(line)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hyperql: "+format+"\n", args...)
	os.Exit(1)
}
