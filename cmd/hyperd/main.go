// Command hyperd is the HypeR query-serving daemon: a long-lived HTTP JSON
// API over the hyper engine, hosting named sessions (generated datasets or
// CSV uploads, each with a bounded per-session artifact cache) and serving
// concurrent what-if, how-to, explain and batch queries — synchronously, or
// asynchronously through the job API (submit, poll, cancel; see README.md
// for a curl walkthrough).
//
// Usage:
//
//	hyperd -addr :8080 -preload toy,german
//	curl localhost:8080/v1/datasets
//	curl -X POST localhost:8080/v1/whatif -d '{"session":"german","query":"USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)"}'
//	curl -X POST localhost:8080/v1/jobs -d '{"session":"german","kind":"howto","query":"USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)"}'
//	curl localhost:8080/v1/stats
//
// Every hyperd embeds a shard coordinator: workers started with
//
//	hyperd -worker -coordinator http://host:8080 -addr :8081
//
// register themselves (with heartbeats) and are handed contiguous ranges of
// each query's canonical shard plan; session frames ship to a worker on
// first touch and results merge in plan order, bit-identical to a local
// run. The per-request "placement" knob ("local" | "workers" | "fit")
// selects the execution path; see README.md for the worker-mode
// walkthrough.
//
// Preloaded sessions are named after their dataset. See internal/server for
// the full API surface and DESIGN.md for the architecture.
//
// On SIGTERM/SIGINT the daemon shuts down gracefully: job submission stops
// (503), queued jobs are cancelled, running jobs are awaited up to
// -drain-timeout (then cancelled mid-solve via their contexts), and only
// then is the HTTP listener closed — so clients can poll final job states
// during the drain. A worker deregisters from its coordinator before
// exiting, so shards requeue proactively instead of timing out a lease.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"net"
	"net/url"

	"hyper/internal/dataset"
	"hyper/internal/dist"
	"hyper/internal/fault"
	"hyper/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", 512, "per-session cache bound in artifacts (-1 = unbounded)")
	planCacheEntries := flag.Int("plan-cache-entries", 256, "per-session compiled-plan cache bound in artifacts (-1 = unbounded)")
	workers := flag.Int("batch-workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions")
	jobWorkers := flag.Int("job-workers", 2, "async job worker-pool size")
	jobQueue := flag.Int("job-queue", 64, "async job queue depth (submissions past it get HTTP 429)")
	jobsPerSession := flag.Int("jobs-per-session", 4, "max live async jobs per session (-1 = unlimited)")
	jobRetention := flag.Int("job-retention", 256, "finished jobs kept pollable")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs on shutdown before cancelling them")
	preload := flag.String("preload", "", "comma-separated dataset names to preload as sessions (see /v1/datasets)")
	preloadScale := flag.Float64("preload-scale", 1.0, "dataset scale for preloaded sessions")
	seed := flag.Int64("seed", 7, "seed for preloaded sessions")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	distTTL := flag.Duration("dist-ttl", 15*time.Second, "coordinator: worker lease (a worker missing heartbeats this long gets no shards)")
	distSecret := flag.String("dist-secret", "", "shared secret for the dist surface (registration + worker compute endpoints); set on coordinator and workers alike when untrusted peers can reach the listeners")
	distState := flag.String("dist-state", "", "coordinator: persist worker registry/quarantine/assignment state to this JSON file (atomic rename) and re-adopt the fleet on restart")
	distRPCTimeout := flag.Duration("dist-rpc-timeout", 0, "coordinator: per-RPC timeout for worker calls (0 = 2m default)")
	distBreakerFailures := flag.Int("dist-breaker-failures", 0, "coordinator: consecutive worker failures before quarantine (0 = default 3)")
	distBreakerCooldown := flag.Duration("dist-breaker-cooldown", 0, "coordinator: quarantine cooldown before a worker is probed again (0 = default 30s)")
	faultSpec := flag.String("fault", "", "deterministic fault injection spec, e.g. \"eval:kill:after=1,frame_ship:error:count=1\" (testing only; see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")
	workerMode := flag.Bool("worker", false, "run as a shard worker instead of a serving daemon (requires -coordinator)")
	coordinator := flag.String("coordinator", "", "worker mode: coordinator base URL to register with (e.g. http://host:8080)")
	advertise := flag.String("advertise", "", "worker mode: base URL the coordinator dials back (default derived from -addr on 127.0.0.1)")
	workerID := flag.String("worker-id", "", "worker mode: stable worker id (default <hostname>-<pid>)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "worker mode: heartbeat interval (keep well under the coordinator's -dist-ttl)")
	workerFrames := flag.Int("worker-frames", 8, "worker mode: session frames kept (LRU eviction past this)")
	slowQueryMs := flag.Int("slow-query-ms", 0, "log a JSON line (with trace id) for query requests at least this slow (0 = off)")
	usageEntries := flag.Int("usage-entries", 256, "query shapes tracked in the /v1/usage table (least-used evicted past this)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off; keep it off or firewalled in production)")
	flag.Parse()

	logger := log.New(os.Stderr, "hyperd: ", log.LstdFlags)
	if *pprofAddr != "" {
		servePprof(logger, *pprofAddr)
	}
	inj, err := fault.Parse(*faultSpec, *faultSeed)
	if err != nil {
		logger.Fatalf("-fault: %v", err)
	}
	if inj != nil {
		logger.Printf("fault injection armed: %s", inj)
	}
	if *workerMode {
		if *coordinator == "" {
			logger.Fatal("-worker requires -coordinator")
		}
		if err := runWorker(logger, *addr, *coordinator, *advertise, *workerID, *distSecret, *heartbeat, *drainTimeout, *workerFrames, *quiet, inj); err != nil {
			logger.Fatalf("worker: %v", err)
		}
		return
	}

	cfg := server.Config{
		CacheEntries:        *cacheEntries,
		PlanCacheEntries:    *planCacheEntries,
		BatchWorkers:        *workers,
		MaxSessions:         *maxSessions,
		JobWorkers:          *jobWorkers,
		JobQueueDepth:       *jobQueue,
		JobsPerSession:      *jobsPerSession,
		JobRetention:        *jobRetention,
		DistTTL:             *distTTL,
		DistSecret:          *distSecret,
		DistStatePath:       *distState,
		DistRPCTimeout:      *distRPCTimeout,
		DistBreakerFailures: *distBreakerFailures,
		DistBreakerCooldown: *distBreakerCooldown,
		Fault:               inj,
		SlowQueryMs:         *slowQueryMs,
		UsageEntries:        *usageEntries,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := server.New(cfg)

	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := preloadSession(srv, name, *preloadScale, *seed); err != nil {
				logger.Fatalf("preloading %q: %v", name, err)
			}
			logger.Printf("preloaded session %q", name)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Printf("received %s, draining jobs (up to %s)", sig, *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(drainCtx); err != nil {
			logger.Printf("drain: running jobs cancelled after timeout: %v", err)
		}
		cancelDrain()
		logger.Printf("jobs drained, shutting down HTTP")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// runWorker serves the dist compute API and keeps a registration alive with
// the coordinator: register (with retry), heartbeat every interval (backing
// off with jitter on transient coordinator errors), re-register when the
// coordinator forgets us (restart). On SIGTERM it drains in-flight shard
// RPCs (bounded by drainTimeout, heartbeats still flowing so the lease
// survives the drain) before deregistering, so the coordinator requeues
// proactively instead of timing out a lease mid-RPC.
func runWorker(logger *log.Logger, addr, coordinatorURL, advertiseURL, id, secret string, hb, drainTimeout time.Duration, maxFrames int, quiet bool, inj *fault.Injector) error {
	if hb <= 0 {
		hb = 5 * time.Second
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if advertiseURL == "" {
		if strings.HasPrefix(addr, ":") {
			advertiseURL = "http://127.0.0.1" + addr
		} else {
			advertiseURL = "http://" + addr
		}
	}
	coordinatorURL = strings.TrimRight(coordinatorURL, "/")
	// A loopback/unspecified advertise URL is only reachable from the
	// worker's own machine. With a remote coordinator it would register
	// fine and then fail every dial-back — an endless register/drop/requeue
	// churn where every query quietly falls back to local evaluation — so
	// refuse the combination up front.
	if loopbackURL(advertiseURL) && !loopbackURL(coordinatorURL) {
		return fmt.Errorf("advertise URL %s is loopback but the coordinator %s is not on this machine; pass -advertise with a routable address",
			advertiseURL, coordinatorURL)
	}

	wcfg := dist.WorkerConfig{MaxFrames: maxFrames, Secret: secret, Fault: inj}
	if !quiet {
		wcfg.Logf = logger.Printf
	}
	w := dist.NewWorker(wcfg)
	mux := http.NewServeMux()
	mux.Handle("/dist/v1/", w.Handler())
	// Observability surface, same paths as the serving daemon so one scrape
	// config covers coordinator and workers alike.
	mux.Handle("GET /metrics", w.Metrics().Handler())
	mux.Handle("GET /v1/traces", w.Traces().ListHandler())
	mux.Handle("GET /v1/traces/{id}", w.Traces().GetHandler())
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"ok":true,"worker":%q,"frames":%d}`, id, len(w.FrameIDs()))
	})
	httpSrv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("worker %s listening on %s (advertising %s, coordinator %s)", id, addr, advertiseURL, coordinatorURL)
		errc <- httpSrv.ListenAndServe()
	}()

	client := &http.Client{Timeout: 10 * time.Second}
	coordPost := func(path string, body string) (int, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(http.MethodPost, coordinatorURL+path, rd)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if secret != "" {
			req.Header.Set("Authorization", "Bearer "+secret)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	register := func() error {
		status, err := coordPost("/dist/v1/workers", fmt.Sprintf(`{"id":%q,"url":%q}`, id, advertiseURL))
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("register: status %d", status)
		}
		return nil
	}
	beat := func() (int, error) {
		if err := inj.Hit(fault.PointHeartbeat); err != nil {
			return 0, err
		}
		return coordPost("/dist/v1/workers/"+id+"/beat", "")
	}

	stopBeats := make(chan struct{})
	beatsDone := make(chan struct{})
	go func() {
		defer close(beatsDone)
		registered := false
		for backoff := time.Second; !registered; {
			if err := register(); err != nil {
				logger.Printf("registering with %s: %v (retrying in %s)", coordinatorURL, err, backoff)
				select {
				case <-time.After(backoff):
				case <-stopBeats:
					return
				}
				if backoff < 30*time.Second {
					backoff *= 2
				}
				continue
			}
			registered = true
			logger.Printf("registered with coordinator %s", coordinatorURL)
		}
		// Transient coordinator errors back the heartbeat off exponentially
		// (with jitter, so a restarted coordinator is not hit by every worker
		// in lockstep) instead of hammering a struggling peer at full rate.
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		fails := 0
		timer := time.NewTimer(hb)
		defer timer.Stop()
		for {
			select {
			case <-timer.C:
				status, err := beat()
				switch {
				case err != nil:
					fails++
					logger.Printf("heartbeat: %v (backing off to %s)", err, nextBeatDelay(hb, fails, 0.5).Round(time.Millisecond))
				case status == http.StatusNotFound:
					// Coordinator restarted (or dropped us after a failure):
					// re-register so shards flow again.
					fails = 0
					if err := register(); err != nil {
						logger.Printf("re-registering: %v", err)
					} else {
						logger.Printf("re-registered with coordinator")
					}
				case status >= 500:
					fails++
					logger.Printf("heartbeat: status %d (backing off to %s)", status, nextBeatDelay(hb, fails, 0.5).Round(time.Millisecond))
				case status != http.StatusOK:
					fails = 0
					logger.Printf("heartbeat: status %d", status)
				default:
					fails = 0
				}
				timer.Reset(nextBeatDelay(hb, fails, rng.Float64()))
			case <-stopBeats:
				return
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		// Drain before deregistering: in-flight shard RPCs finish normally
		// (heartbeats keep the lease alive meanwhile), so the coordinator
		// never sees a connection die mid-response for a clean shutdown.
		logger.Printf("received %s, draining %d in-flight requests (up to %s)", sig, w.InFlight(), drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
		if err := w.Drain(drainCtx); err != nil {
			logger.Printf("drain: still %d in flight after %s: %v", w.InFlight(), drainTimeout, err)
		}
		cancelDrain()
		logger.Printf("drained, deregistering")
		close(stopBeats)
		<-beatsDone
		if req, err := http.NewRequest(http.MethodDelete, coordinatorURL+"/dist/v1/workers/"+id, nil); err == nil {
			if secret != "" {
				req.Header.Set("Authorization", "Bearer "+secret)
			}
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		return nil
	case err := <-errc:
		close(stopBeats)
		<-beatsDone
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// nextBeatDelay is the interval until the next heartbeat: the configured
// base after a success, doubling per consecutive transient failure (capped
// at 8x base or 30s, whichever is smaller — the lease should outlive a
// short coordinator blip, and backing off further would forfeit it for no
// gain). jitter in [0,1) spreads the delay over ±20% so a fleet of workers
// doesn't probe a recovering coordinator in lockstep. Pure for testing.
func nextBeatDelay(base time.Duration, fails int, jitter float64) time.Duration {
	d := base
	for i := 0; i < fails && i < 3; i++ {
		d *= 2
	}
	if max := 30 * time.Second; d > max {
		d = max
	}
	// Scale into [0.8, 1.2).
	d = time.Duration(float64(d) * (0.8 + 0.4*jitter))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// servePprof exposes the net/http/pprof profiling endpoints on their own
// listener — opt-in and address-separated so the serving API can stay
// reachable while profiling stays private (bind it to localhost or a
// firewalled port; the profiles expose internals and can be expensive).
func servePprof(logger *log.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		logger.Printf("pprof listening on %s", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("pprof: %v", err)
		}
	}()
}

// loopbackURL reports whether a base URL points at a loopback or
// unspecified host (reachable only from this machine).
func loopbackURL(raw string) bool {
	u, err := url.Parse(raw)
	if err != nil {
		return false
	}
	host := u.Hostname()
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && (ip.IsLoopback() || ip.IsUnspecified())
}

// preloadSession creates a session named after a registry dataset by driving
// the same path the HTTP API uses.
func preloadSession(srv *server.Server, name string, scale float64, seed int64) error {
	if _, err := dataset.Lookup(name); err != nil {
		return err
	}
	body := fmt.Sprintf(`{"name":%q,"dataset":%q,"scale":%g,"seed":%d}`, name, name, scale, seed)
	req, err := http.NewRequest("POST", "/v1/sessions", strings.NewReader(body))
	if err != nil {
		return err
	}
	rec := &statusRecorder{status: http.StatusOK}
	srv.Handler().ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		return fmt.Errorf("create returned status %d: %s", rec.status, strings.TrimSpace(rec.body.String()))
	}
	return nil
}

// statusRecorder captures a handler's status and body without a network
// round-trip.
type statusRecorder struct {
	status int
	body   strings.Builder
}

func (r *statusRecorder) Header() http.Header         { return http.Header{} }
func (r *statusRecorder) WriteHeader(code int)        { r.status = code }
func (r *statusRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }
