// Command hyperd is the HypeR query-serving daemon: a long-lived HTTP JSON
// API over the hyper engine, hosting named sessions (generated datasets or
// CSV uploads, each with a bounded per-session artifact cache) and serving
// concurrent what-if, how-to, explain and batch queries — synchronously, or
// asynchronously through the job API (submit, poll, cancel; see README.md
// for a curl walkthrough).
//
// Usage:
//
//	hyperd -addr :8080 -preload toy,german
//	curl localhost:8080/v1/datasets
//	curl -X POST localhost:8080/v1/whatif -d '{"session":"german","query":"USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)"}'
//	curl -X POST localhost:8080/v1/jobs -d '{"session":"german","kind":"howto","query":"USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)"}'
//	curl localhost:8080/v1/stats
//
// Preloaded sessions are named after their dataset. See internal/server for
// the full API surface and DESIGN.md for the architecture.
//
// On SIGTERM/SIGINT the daemon shuts down gracefully: job submission stops
// (503), queued jobs are cancelled, running jobs are awaited up to
// -drain-timeout (then cancelled mid-solve via their contexts), and only
// then is the HTTP listener closed — so clients can poll final job states
// during the drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyper/internal/dataset"
	"hyper/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", 512, "per-session cache bound in artifacts (-1 = unbounded)")
	workers := flag.Int("batch-workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions")
	jobWorkers := flag.Int("job-workers", 2, "async job worker-pool size")
	jobQueue := flag.Int("job-queue", 64, "async job queue depth (submissions past it get HTTP 429)")
	jobsPerSession := flag.Int("jobs-per-session", 4, "max live async jobs per session (-1 = unlimited)")
	jobRetention := flag.Int("job-retention", 256, "finished jobs kept pollable")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs on shutdown before cancelling them")
	preload := flag.String("preload", "", "comma-separated dataset names to preload as sessions (see /v1/datasets)")
	preloadScale := flag.Float64("preload-scale", 1.0, "dataset scale for preloaded sessions")
	seed := flag.Int64("seed", 7, "seed for preloaded sessions")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "hyperd: ", log.LstdFlags)
	cfg := server.Config{
		CacheEntries:   *cacheEntries,
		BatchWorkers:   *workers,
		MaxSessions:    *maxSessions,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobsPerSession: *jobsPerSession,
		JobRetention:   *jobRetention,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := server.New(cfg)

	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := preloadSession(srv, name, *preloadScale, *seed); err != nil {
				logger.Fatalf("preloading %q: %v", name, err)
			}
			logger.Printf("preloaded session %q", name)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Printf("received %s, draining jobs (up to %s)", sig, *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(drainCtx); err != nil {
			logger.Printf("drain: running jobs cancelled after timeout: %v", err)
		}
		cancelDrain()
		logger.Printf("jobs drained, shutting down HTTP")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// preloadSession creates a session named after a registry dataset by driving
// the same path the HTTP API uses.
func preloadSession(srv *server.Server, name string, scale float64, seed int64) error {
	if _, err := dataset.Lookup(name); err != nil {
		return err
	}
	body := fmt.Sprintf(`{"name":%q,"dataset":%q,"scale":%g,"seed":%d}`, name, name, scale, seed)
	req, err := http.NewRequest("POST", "/v1/sessions", strings.NewReader(body))
	if err != nil {
		return err
	}
	rec := &statusRecorder{status: http.StatusOK}
	srv.Handler().ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		return fmt.Errorf("create returned status %d: %s", rec.status, strings.TrimSpace(rec.body.String()))
	}
	return nil
}

// statusRecorder captures a handler's status and body without a network
// round-trip.
type statusRecorder struct {
	status int
	body   strings.Builder
}

func (r *statusRecorder) Header() http.Header         { return http.Header{} }
func (r *statusRecorder) WriteHeader(code int)        { r.status = code }
func (r *statusRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }
