package main

import (
	"testing"
	"time"
)

func TestNextBeatDelay(t *testing.T) {
	const base = 5 * time.Second
	cases := []struct {
		name   string
		fails  int
		jitter float64
		want   time.Duration
	}{
		{"healthy-low-jitter", 0, 0, 4 * time.Second},
		{"healthy-high-jitter", 0, 0.999, time.Duration(float64(base) * (0.8 + 0.4*0.999))},
		{"one-failure-doubles", 1, 0.5, 10 * time.Second},
		{"two-failures-quadruple", 2, 0.5, 20 * time.Second},
		{"backoff-capped-at-8x", 9, 0.5, 30 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := nextBeatDelay(base, tc.fails, tc.jitter)
			// Tolerate float rounding in the jitter scale.
			if diff := got - tc.want; diff < -time.Millisecond || diff > time.Millisecond {
				t.Fatalf("nextBeatDelay(%v, %d, %v) = %v, want ~%v", base, tc.fails, tc.jitter, got, tc.want)
			}
		})
	}

	// Jitter must spread, never collapse the delay to zero.
	if d := nextBeatDelay(0, 0, 0); d < time.Millisecond {
		t.Fatalf("zero base collapsed to %v", d)
	}
	// Monotone in failures until the cap.
	prev := time.Duration(0)
	for fails := 0; fails <= 3; fails++ {
		d := nextBeatDelay(base, fails, 0.5)
		if d < prev {
			t.Fatalf("delay shrank at fails=%d: %v < %v", fails, d, prev)
		}
		prev = d
	}
}
