// Command benchguard is the CI bench-regression gate: it compares a freshly
// generated BENCH_engine.json against the committed baseline and exits
// non-zero when a tracked metric regresses beyond tolerance. CI runs
// `hyperbench -exp engine` on every pull request, uploads the fresh JSON as
// an artifact, and fails the build on regression — so the perf numbers the
// repository claims are enforced, not aspirational.
//
// Tracked metrics:
//
//   - cold_whatif_ms        (cold what-if latency; relative tolerance, CI
//     machines are noisy so the default is 25%). Wall-clock only gates
//     when the baseline was recorded on comparable hardware — the same
//     GOMAXPROCS — otherwise a baseline committed from a laptop would fail
//     every PR on a slower runner (and a faster runner would mask real
//     regressions). On mismatched hardware the latency comparison is
//     printed as advisory and the gate rests on the allocation metrics;
//     regenerate the baseline from a CI artifact to arm it.
//   - freq_fit_allocs_per_op and freq_predict_allocs_per_op (allocation
//     counts; near-deterministic across machines, same relative tolerance
//     plus a small absolute grace so a zero baseline doesn't forbid a
//     single new alloc)
//   - tracing_overhead_pct (span-instrumentation cost of a cold what-if,
//     measured by hyperbench as an interleaved traced/untraced pair on the
//     SAME machine in the SAME run, so it gates unconditionally — no
//     baseline or hardware comparability needed; must stay under 2%, with
//     a 0.25ms absolute grace so sub-millisecond noise on tiny workloads
//     cannot fail the build)
//   - metering_overhead_pct (per-query cost-meter cost of the same cold
//     what-if, measured and gated exactly like the tracing overhead: the
//     resource accounting must stay effectively free)
//   - cold_whatif_planned_ms (the cold query through the cost-based planner
//     with fresh caches; gated like cold_whatif_ms — same tolerance, same
//     hardware-comparability rule)
//   - plan_cache_speedup (warm repeat over shared plan + artifact caches vs
//     the planned cold path, a within-run pair like the overhead gates, so
//     it gates unconditionally: must stay >= 1.5x)
//
// Usage:
//
//	benchguard -baseline BENCH_engine.json -current /tmp/fresh.json [-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// metrics mirrors the tracked subset of hyperbench's engineBenchResult.
type metrics struct {
	Rows                   int     `json:"rows"`
	GOMAXPROCS             int     `json:"gomaxprocs"`
	NumCPU                 int     `json:"num_cpu"`
	GoVersion              string  `json:"go_version"`
	ColdWhatIfMs           float64 `json:"cold_whatif_ms"`
	FreqFitAllocsPerOp     int64   `json:"freq_fit_allocs_per_op"`
	FreqPredictAllocsPerOp int64   `json:"freq_predict_allocs_per_op"`
	ColdWhatIfTracedMs     float64 `json:"cold_whatif_traced_ms"`
	TracingOverheadPct     float64 `json:"tracing_overhead_pct"`
	ColdWhatIfMeteredMs    float64 `json:"cold_whatif_metered_ms"`
	MeteringOverheadPct    float64 `json:"metering_overhead_pct"`
	ColdWhatIfPlannedMs    float64 `json:"cold_whatif_planned_ms"`
	WarmPlanCacheMs        float64 `json:"warm_plan_cache_ms"`
	PlanCacheSpeedup       float64 `json:"plan_cache_speedup"`
}

// env renders the execution environment of one run for the verdict. Older
// baselines predate the num_cpu/go_version fields; they print as "?" until
// the baseline is regenerated.
func (m metrics) env() string {
	cpus := "?"
	if m.NumCPU > 0 {
		cpus = fmt.Sprintf("%d", m.NumCPU)
	}
	gover := m.GoVersion
	if gover == "" {
		gover = "?"
	}
	return fmt.Sprintf("gomaxprocs=%d cpus=%s go=%s", m.GOMAXPROCS, cpus, gover)
}

func load(path string) (metrics, error) {
	var m metrics
	raw, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// allocGrace is the absolute allocation slack added on top of the relative
// tolerance: zero-alloc baselines stay comparable without forbidding every
// incidental allocation forever.
const allocGrace = 8

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "committed baseline JSON")
	currentPath := flag.String("current", "", "freshly generated JSON to check")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative regression (0.25 = 25%)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(2)
	}
	if base.Rows != cur.Rows {
		fmt.Fprintf(os.Stderr, "benchguard: row counts differ (baseline %d, current %d); compare runs at the same -scale\n",
			base.Rows, cur.Rows)
		os.Exit(2)
	}

	failed := false
	check := func(name string, baseV, curV, limit float64, gate bool) {
		status := "ok"
		if curV > limit {
			if gate {
				status = "REGRESSION"
				failed = true
			} else {
				status = "over limit (advisory: baseline from different hardware)"
			}
		} else if !gate {
			status = "ok (advisory)"
		}
		fmt.Printf("%-28s baseline %-12.6g current %-12.6g limit %-12.6g %s\n",
			name, baseV, curV, limit, status)
	}
	// The environments lead the verdict: a wall-clock comparison only means
	// something when both runs name comparable hardware, and a 1-core
	// runner's flat shard sweep must never be read as a regression against
	// a multi-core baseline.
	fmt.Printf("baseline env: %s\n", base.env())
	fmt.Printf("current env:  %s\n", cur.env())
	comparableHW := base.GOMAXPROCS == cur.GOMAXPROCS
	if !comparableHW {
		fmt.Printf("note: baseline GOMAXPROCS=%d, current GOMAXPROCS=%d — wall-clock is advisory until the baseline is regenerated on this hardware\n",
			base.GOMAXPROCS, cur.GOMAXPROCS)
	}
	if base.GoVersion != "" && cur.GoVersion != "" && base.GoVersion != cur.GoVersion {
		fmt.Printf("note: baseline built with %s, current with %s — allocation counts can shift across Go releases\n",
			base.GoVersion, cur.GoVersion)
	}
	check("cold_whatif_ms", base.ColdWhatIfMs, cur.ColdWhatIfMs,
		base.ColdWhatIfMs*(1+*tolerance), comparableHW)
	// The planned cold path gates exactly like the unplanned one (same 25%
	// policy, same hardware-comparability rule); a zero baseline means the
	// committed JSON predates the planner and the comparison waits for a
	// regeneration.
	if base.ColdWhatIfPlannedMs > 0 && cur.ColdWhatIfPlannedMs > 0 {
		check("cold_whatif_planned_ms", base.ColdWhatIfPlannedMs, cur.ColdWhatIfPlannedMs,
			base.ColdWhatIfPlannedMs*(1+*tolerance), comparableHW)
	} else {
		fmt.Printf("%-28s not measured (regenerate baseline and current with current hyperbench)\n", "cold_whatif_planned_ms")
	}
	check("freq_fit_allocs_per_op", float64(base.FreqFitAllocsPerOp), float64(cur.FreqFitAllocsPerOp),
		math.Ceil(float64(base.FreqFitAllocsPerOp)*(1+*tolerance))+allocGrace, true)
	check("freq_predict_allocs_per_op", float64(base.FreqPredictAllocsPerOp), float64(cur.FreqPredictAllocsPerOp),
		math.Ceil(float64(base.FreqPredictAllocsPerOp)*(1+*tolerance))+allocGrace, true)

	// Tracing and metering overheads are within-run paired measurements
	// (hyperbench interleaves instrumented and bare reps on this machine),
	// so they gate against the fixed 2% budget regardless of the baseline's
	// hardware. The absolute grace keeps sub-millisecond jitter on small
	// workloads from tripping a percentage gate.
	const maxInstrumentationPct = 2.0
	const instrumentationGraceMs = 0.25
	pairedGate := func(name string, instrumentedMs, overheadPct float64) {
		if instrumentedMs <= 0 {
			fmt.Printf("%-28s not measured (regenerate with current hyperbench)\n", name)
			return
		}
		// Recover the paired bare time from the ratio: cold_whatif_ms is a
		// median over different reps and would make the delta incoherent.
		pairedBareMs := instrumentedMs / (1 + overheadPct/100)
		deltaMs := instrumentedMs - pairedBareMs
		status := "ok"
		if overheadPct > maxInstrumentationPct && deltaMs > instrumentationGraceMs {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s current %+.3f%% (%+.3fms)    limit %.6g%%       %s\n",
			name, overheadPct, deltaMs, maxInstrumentationPct, status)
	}
	pairedGate("tracing_overhead_pct", cur.ColdWhatIfTracedMs, cur.TracingOverheadPct)
	pairedGate("metering_overhead_pct", cur.ColdWhatIfMeteredMs, cur.MeteringOverheadPct)

	// The plan-cache speedup is a within-run cold/warm pair like the
	// instrumentation overheads, so it gates unconditionally: a warm repeat
	// of a structurally identical query must be at least minPlanSpeedup
	// faster than the planned cold path. Zero means the run predates the
	// planner fields.
	const minPlanSpeedup = 1.5
	if cur.WarmPlanCacheMs <= 0 || cur.PlanCacheSpeedup <= 0 {
		fmt.Printf("%-28s not measured (regenerate with current hyperbench)\n", "plan_cache_speedup")
	} else {
		status := "ok"
		if cur.PlanCacheSpeedup < minPlanSpeedup {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s current %.2fx (cold %.3gms / warm %.3gms)  floor %.2gx  %s\n",
			"plan_cache_speedup", cur.PlanCacheSpeedup, cur.ColdWhatIfPlannedMs, cur.WarmPlanCacheMs, minPlanSpeedup, status)
	}

	if failed {
		fmt.Println("benchguard: FAIL — a tracked metric regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchguard: ok")
}
