// Command distsmoke is the distributed-path smoke gate: it boots one real
// hyperd coordinator process plus two real hyperd worker processes, runs
// the toy and german what-if/how-to goldens through every placement
// ("local", "workers", "fit"), and fails on any byte of divergence between
// the distributed results and the single-node ones. CI runs it on every
// pull request (the dist-smoke job), so the bit-identity contract of the
// shard transport is enforced against real processes and real sockets, not
// just in-process test doubles.
//
// Usage:
//
//	go build -o /tmp/hyperd ./cmd/hyperd
//	go run ./cmd/distsmoke -hyperd /tmp/hyperd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "distsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("picking port: %v", err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is one spawned hyperd process.
type proc struct {
	name string
	cmd  *exec.Cmd
}

func spawn(name, bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("starting %s: %v", name, err)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: started %s (pid %d): %s %v\n", name, cmd.Process.Pid, bin, args)
	return &proc{name: name, cmd: cmd}
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

func waitHealthy(base string, deadline time.Duration) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatalf("%s did not become healthy within %s", base, deadline)
}

func waitWorkers(base string, want int, deadline time.Duration) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		var out struct {
			Workers []struct {
				Alive bool `json:"alive"`
			} `json:"workers"`
		}
		resp, err := http.Get(base + "/dist/v1/workers")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err == nil {
				alive := 0
				for _, w := range out.Workers {
					if w.Alive {
						alive++
					}
				}
				if alive >= want {
					return
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatalf("coordinator never saw %d live workers within %s", want, deadline)
}

func post(base, path string, body any) (int, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, payload
}

// stable is the placement-independent subset of a what-if response: every
// semantic field of the result, none of the execution diagnostics. Encoding
// it with encoding/json (shortest-round-trip float formatting) makes the
// comparison exactly byte-for-byte on the float64 values.
type stable struct {
	Value       float64  `json:"value"`
	Sum         float64  `json:"sum"`
	Count       float64  `json:"count"`
	Mode        string   `json:"mode"`
	Estimator   string   `json:"estimator"`
	Backdoor    []string `json:"backdoor"`
	Blocks      int      `json:"blocks"`
	Disjuncts   int      `json:"disjuncts"`
	ViewRows    int      `json:"view_rows"`
	UpdatedRows int      `json:"updated_rows"`
	SampledRows int      `json:"sampled_rows"`
	ShardPlan   int      `json:"shard_plan"`
}

type whatIfResp struct {
	stable
	Placement     string `json:"placement"`
	RemoteWorkers int    `json:"remote_workers"`
}

// stableHowTo strips a how-to response of wall-clock fields.
type stableHowTo struct {
	Choices     json.RawMessage `json:"choices"`
	Objective   float64         `json:"objective"`
	Base        float64         `json:"base"`
	Candidates  int             `json:"candidates"`
	WhatIfEvals int             `json:"whatif_evals"`
	IPNodes     int             `json:"ip_nodes"`
}

func stableBytes(payload []byte, dst any) []byte {
	if err := json.Unmarshal(payload, dst); err != nil {
		fatalf("decoding response: %v (%s)", err, payload)
	}
	out, err := json.Marshal(dst)
	if err != nil {
		fatalf("re-encoding response: %v", err)
	}
	return out
}

// span mirrors obs.SpanJSON (distsmoke deliberately decodes the wire shape,
// not the Go type, so the tool also guards the JSON contract).
type span struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
	Children []*span        `json:"children"`
}

func (s *span) find(name string) *span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// checkDistTrace runs one traced distributed what-if and asserts the
// coordinator grafted the workers' span trees into a single end-to-end
// trace: one worker_eval child per assigned worker shard range, each with
// the remote tree attached, shard counts reconciling with the plan.
func checkDistTrace(cbase string) {
	var res struct {
		ShardPlan     int `json:"shard_plan"`
		RemoteWorkers int `json:"remote_workers"`
		Trace         *struct {
			ID   string `json:"id"`
			Root *span  `json:"root"`
		} `json:"trace"`
	}
	status, payload := post(cbase, "/v1/whatif?trace=1", map[string]any{
		"session": "german", "placement": "workers",
		"query": `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
	})
	if status != http.StatusOK {
		fatalf("traced whatif: status %d: %s", status, payload)
	}
	if err := json.Unmarshal(payload, &res); err != nil {
		fatalf("traced whatif: %v", err)
	}
	if res.Trace == nil || res.Trace.Root == nil || res.Trace.ID == "" {
		fatalf("?trace=1 returned no trace")
	}
	de := res.Trace.Root.find("dist_eval")
	if de == nil {
		fatalf("traced distributed whatif has no dist_eval span")
	}
	shardSum, workerSpans, grafted := 0.0, 0, 0
	for _, c := range de.Children {
		if c.Name != "worker_eval" {
			continue
		}
		workerSpans++
		shards, _ := c.Attrs["shards"].(float64)
		shardSum += shards
		if c.find("eval") != nil {
			grafted++
		}
	}
	if workerSpans != res.RemoteWorkers || workerSpans == 0 {
		fatalf("trace has %d worker_eval spans, response reports %d remote workers", workerSpans, res.RemoteWorkers)
	}
	if grafted != workerSpans {
		fatalf("only %d of %d worker_eval spans carry a grafted remote tree", grafted, workerSpans)
	}
	if int(shardSum) != res.ShardPlan {
		fatalf("worker_eval shard counts sum to %v, plan is %d", shardSum, res.ShardPlan)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: trace %s ok: %d worker spans, %d/%d shards grafted end-to-end\n",
		res.Trace.ID, workerSpans, int(shardSum), res.ShardPlan)
}

// scrapeMetrics fetches and parses a Prometheus text exposition, failing on
// any malformed line, and returns series -> value (series includes labels).
func scrapeMetrics(name, base string) map[string]float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatalf("%s /metrics: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("%s /metrics: status %d", name, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fatalf("%s /metrics: content type %q", name, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%s /metrics: %v", name, err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			fatalf("%s /metrics: malformed line %q", name, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			fatalf("%s /metrics: bad value in %q: %v", name, line, err)
		}
		out[line[:sp]] = v
	}
	if len(out) == 0 {
		fatalf("%s /metrics: empty exposition", name)
	}
	return out
}

func requireSeries(name string, series map[string]float64, want ...string) {
	for _, w := range want {
		if _, ok := series[w]; !ok {
			fatalf("%s /metrics is missing series %q", name, w)
		}
	}
}

func main() {
	hyperd := flag.String("hyperd", "hyperd", "path to the hyperd binary")
	flag.Parse()

	cport, w1port, w2port := freePort(), freePort(), freePort()
	cbase := fmt.Sprintf("http://127.0.0.1:%d", cport)

	coord := spawn("coordinator", *hyperd,
		"-addr", fmt.Sprintf("127.0.0.1:%d", cport),
		"-dist-ttl", "5s", "-quiet")
	defer coord.stop()
	waitHealthy(cbase, 30*time.Second)

	for i, port := range []int{w1port, w2port} {
		w := spawn(fmt.Sprintf("worker%d", i+1), *hyperd,
			"-worker",
			"-coordinator", cbase,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-worker-id", fmt.Sprintf("smoke-w%d", i+1),
			"-heartbeat", "500ms", "-quiet")
		defer w.stop()
	}
	waitWorkers(cbase, 2, 30*time.Second)

	// Sessions: the toy catalog (multi-relation, forest estimator) and a
	// german build at a shard granularity that spreads the plan over both
	// workers (5000 rows / 256 -> 20 plan shards).
	for _, s := range []any{
		map[string]any{"name": "toy", "dataset": "toy", "options": map[string]any{"seed": 7}},
		map[string]any{"name": "german", "dataset": "german", "options": map[string]any{"seed": 7, "shard_rows": 256}},
	} {
		if status, payload := post(cbase, "/v1/sessions", s); status != http.StatusOK {
			fatalf("creating session: %d %s", status, payload)
		}
	}

	whatifGoldens := []struct {
		name, session, query string
	}{
		{"german-count", "german", `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`},
		{"german-for", "german", `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`},
		{"german-avg", "german", `USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`},
		{"toy-avg", "toy", `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
			AVG(T2.Rating) AS Rtng
			FROM Product AS T1, Review AS T2
			WHERE T1.PID = T2.PID
			GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
			WHEN Brand = 'Asus'
			UPDATE(Price) = 1.1 * PRE(Price)
			OUTPUT AVG(POST(Rtng))
			FOR PRE(Category) = 'Laptop'`},
	}
	for _, g := range whatifGoldens {
		run := func(placement string) ([]byte, whatIfResp) {
			var r whatIfResp
			status, payload := post(cbase, "/v1/whatif", map[string]any{
				"session": g.session, "query": g.query, "placement": placement,
			})
			if status != http.StatusOK {
				fatalf("%s (%s): status %d: %s", g.name, placement, status, payload)
			}
			if err := json.Unmarshal(payload, &r); err != nil {
				fatalf("%s (%s): %v", g.name, placement, err)
			}
			return stableBytes(payload, &r.stable), r
		}
		// "fit" first so the cold session cache exercises remote fitting.
		fitBytes, _ := run("fit")
		workersBytes, wresp := run("workers")
		localBytes, _ := run("local")
		if !bytes.Equal(workersBytes, localBytes) {
			fatalf("%s: placement=workers diverges from local:\n  workers: %s\n  local:   %s", g.name, workersBytes, localBytes)
		}
		if !bytes.Equal(fitBytes, localBytes) {
			fatalf("%s: placement=fit diverges from local:\n  fit:   %s\n  local: %s", g.name, fitBytes, localBytes)
		}
		if wresp.Placement != "workers" || wresp.RemoteWorkers < 1 {
			fatalf("%s: distributed run reports placement=%q remote_workers=%d — the workers were not used",
				g.name, wresp.Placement, wresp.RemoteWorkers)
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok (local == workers == fit): %s\n", g.name, localBytes)
	}

	howtoGoldens := []struct {
		name, session, query string
	}{
		{"german-howto", "german", `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`},
		{"toy-howto", "toy", `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
			AVG(T2.Rating) AS Rtng
			FROM Product AS T1, Review AS T2
			WHERE T1.PID = T2.PID
			GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
			HOWTOUPDATE Price LIMIT UPDATES <= 1 TOMAXIMIZE AVG(POST(Rtng))`},
	}
	for _, g := range howtoGoldens {
		run := func(placement string) []byte {
			status, payload := post(cbase, "/v1/howto", map[string]any{
				"session": g.session, "query": g.query, "placement": placement,
			})
			if status != http.StatusOK {
				fatalf("%s (%s): status %d: %s", g.name, placement, status, payload)
			}
			var s stableHowTo
			return stableBytes(payload, &s)
		}
		fitBytes := run("fit") // cold cache: fits go through the workers
		localBytes := run("local")
		if !bytes.Equal(fitBytes, localBytes) {
			fatalf("%s: placement=fit diverges from local:\n  fit:   %s\n  local: %s", g.name, fitBytes, localBytes)
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok (local == fit): %s\n", g.name, localBytes)
	}

	// The coordinator must have actually distributed work.
	var stats struct {
		Dist struct {
			RemoteEvals   uint64 `json:"remote_evals"`
			RemoteShards  uint64 `json:"remote_shards"`
			RemoteFits    uint64 `json:"remote_fits"`
			FramesShipped uint64 `json:"frames_shipped"`
			WorkersAlive  int    `json:"workers_alive"`
		} `json:"dist"`
	}
	resp, err := http.Get(cbase + "/v1/stats")
	if err != nil {
		fatalf("stats: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		fatalf("stats: %v", err)
	}
	if stats.Dist.WorkersAlive != 2 || stats.Dist.RemoteEvals == 0 || stats.Dist.RemoteShards == 0 ||
		stats.Dist.RemoteFits == 0 || stats.Dist.FramesShipped == 0 {
		fatalf("coordinator gauges say the distributed path did not run: %+v", stats.Dist)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: gauges: %+v\n", stats.Dist)

	// One traced distributed run must stitch a single cross-process trace.
	checkDistTrace(cbase)

	// All three processes must expose well-formed Prometheus text with their
	// core series, and the worker-side shard counters must reconcile with the
	// coordinator's ledger (exact when nothing was requeued).
	coordSeries := scrapeMetrics("coordinator", cbase)
	requireSeries("coordinator", coordSeries,
		`hyper_requests_total{endpoint="whatif"}`,
		`hyper_request_duration_ms_count{endpoint="whatif"}`,
		"hyper_dist_remote_shards_total",
		"hyper_dist_workers_alive",
		"hyper_uptime_seconds",
		"hyper_traces_recorded_total",
	)
	workerShards := 0.0
	for i, port := range []int{w1port, w2port} {
		name := fmt.Sprintf("worker%d", i+1)
		ws := scrapeMetrics(name, fmt.Sprintf("http://127.0.0.1:%d", port))
		requireSeries(name, ws,
			"hyper_worker_evals_total",
			"hyper_worker_eval_shards_total",
			"hyper_worker_fits_total",
			"hyper_worker_frames",
		)
		if ws["hyper_worker_evals_total"] == 0 {
			fatalf("%s served no evals according to its own counters", name)
		}
		workerShards += ws["hyper_worker_eval_shards_total"]
	}
	if requeues := coordSeries["hyper_dist_requeues_total"]; requeues == 0 {
		if remote := coordSeries["hyper_dist_remote_shards_total"]; workerShards != remote {
			fatalf("shard ledgers disagree: workers served %v shards, coordinator recorded %v", workerShards, remote)
		}
	} else {
		fmt.Fprintf(os.Stderr, "distsmoke: %v requeues — skipping exact shard reconciliation\n", requeues)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: metrics ok: workers served %v shards, coordinator ledger matches\n", workerShards)

	fmt.Println("distsmoke: PASS — distributed evaluation is bit-identical to single-node on toy and german")
}
