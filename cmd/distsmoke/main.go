// Command distsmoke is the distributed-path smoke gate: it boots one real
// hyperd coordinator process plus two real hyperd worker processes, runs
// the toy and german what-if/how-to goldens through every placement
// ("local", "workers", "fit"), and fails on any byte of divergence between
// the distributed results and the single-node ones. CI runs it on every
// pull request (the dist-smoke job), so the bit-identity contract of the
// shard transport is enforced against real processes and real sockets, not
// just in-process test doubles.
//
// Usage:
//
//	go build -o /tmp/hyperd ./cmd/hyperd
//	go run ./cmd/distsmoke -hyperd /tmp/hyperd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "distsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("picking port: %v", err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is one spawned hyperd process.
type proc struct {
	name string
	cmd  *exec.Cmd
}

func spawn(name, bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("starting %s: %v", name, err)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: started %s (pid %d): %s %v\n", name, cmd.Process.Pid, bin, args)
	return &proc{name: name, cmd: cmd}
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

func waitHealthy(base string, deadline time.Duration) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatalf("%s did not become healthy within %s", base, deadline)
}

func waitWorkers(base string, want int, deadline time.Duration) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		var out struct {
			Workers []struct {
				Alive bool `json:"alive"`
			} `json:"workers"`
		}
		resp, err := http.Get(base + "/dist/v1/workers")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err == nil {
				alive := 0
				for _, w := range out.Workers {
					if w.Alive {
						alive++
					}
				}
				if alive >= want {
					return
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatalf("coordinator never saw %d live workers within %s", want, deadline)
}

func post(base, path string, body any) (int, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, payload
}

// stable is the placement-independent subset of a what-if response: every
// semantic field of the result, none of the execution diagnostics. Encoding
// it with encoding/json (shortest-round-trip float formatting) makes the
// comparison exactly byte-for-byte on the float64 values.
type stable struct {
	Value       float64  `json:"value"`
	Sum         float64  `json:"sum"`
	Count       float64  `json:"count"`
	Mode        string   `json:"mode"`
	Estimator   string   `json:"estimator"`
	Backdoor    []string `json:"backdoor"`
	Blocks      int      `json:"blocks"`
	Disjuncts   int      `json:"disjuncts"`
	ViewRows    int      `json:"view_rows"`
	UpdatedRows int      `json:"updated_rows"`
	SampledRows int      `json:"sampled_rows"`
	ShardPlan   int      `json:"shard_plan"`
}

type whatIfResp struct {
	stable
	Placement     string `json:"placement"`
	RemoteWorkers int    `json:"remote_workers"`
	// Degraded/DegradedReason are execution diagnostics (never part of the
	// byte-compared stable subset): the chaos suite asserts them.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason"`
}

// stableHowTo strips a how-to response of wall-clock fields.
type stableHowTo struct {
	Choices     json.RawMessage `json:"choices"`
	Objective   float64         `json:"objective"`
	Base        float64         `json:"base"`
	Candidates  int             `json:"candidates"`
	WhatIfEvals int             `json:"whatif_evals"`
	IPNodes     int             `json:"ip_nodes"`
}

func stableBytes(payload []byte, dst any) []byte {
	if err := json.Unmarshal(payload, dst); err != nil {
		fatalf("decoding response: %v (%s)", err, payload)
	}
	out, err := json.Marshal(dst)
	if err != nil {
		fatalf("re-encoding response: %v", err)
	}
	return out
}

// span mirrors obs.SpanJSON (distsmoke deliberately decodes the wire shape,
// not the Go type, so the tool also guards the JSON contract).
type span struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
	Children []*span        `json:"children"`
}

func (s *span) find(name string) *span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// checkDistTrace runs one traced distributed what-if and asserts the
// coordinator grafted the workers' span trees into a single end-to-end
// trace: one worker_eval child per assigned worker shard range, each with
// the remote tree attached, shard counts reconciling with the plan.
func checkDistTrace(cbase string) {
	var res struct {
		ShardPlan     int `json:"shard_plan"`
		RemoteWorkers int `json:"remote_workers"`
		Trace         *struct {
			ID   string `json:"id"`
			Root *span  `json:"root"`
		} `json:"trace"`
	}
	status, payload := post(cbase, "/v1/whatif?trace=1", map[string]any{
		"session": "german", "placement": "workers",
		"query": `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
	})
	if status != http.StatusOK {
		fatalf("traced whatif: status %d: %s", status, payload)
	}
	if err := json.Unmarshal(payload, &res); err != nil {
		fatalf("traced whatif: %v", err)
	}
	if res.Trace == nil || res.Trace.Root == nil || res.Trace.ID == "" {
		fatalf("?trace=1 returned no trace")
	}
	de := res.Trace.Root.find("dist_eval")
	if de == nil {
		fatalf("traced distributed whatif has no dist_eval span")
	}
	shardSum, workerSpans, grafted := 0.0, 0, 0
	for _, c := range de.Children {
		if c.Name != "worker_eval" {
			continue
		}
		workerSpans++
		shards, _ := c.Attrs["shards"].(float64)
		shardSum += shards
		if c.find("eval") != nil {
			grafted++
		}
	}
	if workerSpans != res.RemoteWorkers || workerSpans == 0 {
		fatalf("trace has %d worker_eval spans, response reports %d remote workers", workerSpans, res.RemoteWorkers)
	}
	if grafted != workerSpans {
		fatalf("only %d of %d worker_eval spans carry a grafted remote tree", grafted, workerSpans)
	}
	if int(shardSum) != res.ShardPlan {
		fatalf("worker_eval shard counts sum to %v, plan is %d", shardSum, res.ShardPlan)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: trace %s ok: %d worker spans, %d/%d shards grafted end-to-end\n",
		res.Trace.ID, workerSpans, int(shardSum), res.ShardPlan)
}

// scrapeMetrics fetches and parses a Prometheus text exposition, failing on
// any malformed line, and returns series -> value (series includes labels).
func scrapeMetrics(name, base string) map[string]float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatalf("%s /metrics: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("%s /metrics: status %d", name, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fatalf("%s /metrics: content type %q", name, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%s /metrics: %v", name, err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			fatalf("%s /metrics: malformed line %q", name, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			fatalf("%s /metrics: bad value in %q: %v", name, line, err)
		}
		out[line[:sp]] = v
	}
	if len(out) == 0 {
		fatalf("%s /metrics: empty exposition", name)
	}
	return out
}

func requireSeries(name string, series map[string]float64, want ...string) {
	for _, w := range want {
		if _, ok := series[w]; !ok {
			fatalf("%s /metrics is missing series %q", name, w)
		}
	}
}

// requireHealthGauges asserts the runtime health series every process must
// expose: live goroutine and heap gauges with sane values, and the build
// info series (its go_version label varies, so it is matched by prefix).
func requireHealthGauges(name string, series map[string]float64) {
	requireSeries(name, series, "hyper_go_goroutines", "hyper_go_heap_bytes")
	if series["hyper_go_goroutines"] < 1 || series["hyper_go_heap_bytes"] < 1 {
		fatalf("%s health gauges are implausible: goroutines=%v heap=%v",
			name, series["hyper_go_goroutines"], series["hyper_go_heap_bytes"])
	}
	for s, v := range series {
		if strings.HasPrefix(s, `hyper_build_info{go_version="`) && v == 1 {
			return
		}
	}
	fatalf("%s /metrics is missing hyper_build_info with a go_version label", name)
}

// checkUsageReconciliation scrapes /v1/usage and asserts the cross-process
// cost ledgers: every shape that shipped shards to workers without a retry
// must report coordinator-side dispatch totals (remote_shards,
// dist_bytes_shipped) exactly equal to the summed worker-reported totals
// (worker_shards_run, worker_bytes_received).
func checkUsageReconciliation(cbase string) {
	// Decoded as wire JSON, not the Go types, so the tool also guards the
	// /v1/usage contract.
	var usage struct {
		Shapes []struct {
			Kind        string `json:"kind"`
			Fingerprint string `json:"fingerprint"`
			Count       uint64 `json:"count"`
			Cost        struct {
				TuplesEvaluated  uint64 `json:"tuples_evaluated"`
				RemoteShards     uint64 `json:"remote_shards"`
				WorkerShardsRun  uint64 `json:"worker_shards_run"`
				DistBytesShipped uint64 `json:"dist_bytes_shipped"`
				WorkerBytes      uint64 `json:"worker_bytes_received"`
				Retries          uint64 `json:"retries"`
				Workers          uint64 `json:"workers"`
			} `json:"cost"`
		} `json:"shapes"`
	}
	resp, err := http.Get(cbase + "/v1/usage")
	if err != nil {
		fatalf("usage: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&usage)
	resp.Body.Close()
	if err != nil {
		fatalf("usage: %v", err)
	}
	if len(usage.Shapes) == 0 {
		fatalf("/v1/usage is empty after the golden runs")
	}
	distRows := 0
	for _, row := range usage.Shapes {
		c := row.Cost
		if row.Fingerprint == "" {
			fatalf("usage row for kind %q has no fingerprint", row.Kind)
		}
		if c.RemoteShards == 0 {
			continue
		}
		distRows++
		if c.Retries > 0 {
			fmt.Fprintf(os.Stderr, "distsmoke: usage %s/%s had %d retries — reconciliation waived\n",
				row.Kind, row.Fingerprint, c.Retries)
			continue
		}
		if c.WorkerShardsRun != c.RemoteShards {
			fatalf("usage %s/%s: coordinator dispatched %d shards, workers reported %d",
				row.Kind, row.Fingerprint, c.RemoteShards, c.WorkerShardsRun)
		}
		if c.WorkerBytes != c.DistBytesShipped {
			fatalf("usage %s/%s: coordinator shipped %d request bytes, workers received %d",
				row.Kind, row.Fingerprint, c.DistBytesShipped, c.WorkerBytes)
		}
		if c.Workers == 0 {
			// Remote shards imply at least one folded worker response.
			fatalf("usage %s/%s: remote shards with no folded workers: %+v", row.Kind, row.Fingerprint, c)
		}
	}
	if distRows == 0 {
		fatalf("no usage row shipped shards remotely; the distributed path left no per-query ledger")
	}
	fmt.Fprintf(os.Stderr, "distsmoke: usage ok: %d distributed shapes, per-query ledgers reconcile exactly\n", distRows)
}

// golden is one named query against one session.
type golden struct {
	name, session, query string
}

var whatifGoldens = []golden{
	{"german-count", "german", `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`},
	{"german-for", "german", `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`},
	{"german-avg", "german", `USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`},
	{"toy-avg", "toy", `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
		AVG(T2.Rating) AS Rtng
		FROM Product AS T1, Review AS T2
		WHERE T1.PID = T2.PID
		GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
		WHEN Brand = 'Asus'
		UPDATE(Price) = 1.1 * PRE(Price)
		OUTPUT AVG(POST(Rtng))
		FOR PRE(Category) = 'Laptop'`},
}

var howtoGoldens = []golden{
	{"german-howto", "german", `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`},
	{"toy-howto", "toy", `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
		AVG(T2.Rating) AS Rtng
		FROM Product AS T1, Review AS T2
		WHERE T1.PID = T2.PID
		GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
		HOWTOUPDATE Price LIMIT UPDATES <= 1 TOMAXIMIZE AVG(POST(Rtng))`},
}

// createSessions makes the toy and german sessions on a coordinator — the
// toy catalog (multi-relation, forest estimator) and a german build at a
// shard granularity that spreads the plan over both workers
// (5000 rows / 256 -> 20 plan shards).
func createSessions(cbase string) {
	for _, s := range []any{
		map[string]any{"name": "toy", "dataset": "toy", "options": map[string]any{"seed": 7}},
		map[string]any{"name": "german", "dataset": "german", "options": map[string]any{"seed": 7, "shard_rows": 256}},
	} {
		if status, payload := post(cbase, "/v1/sessions", s); status != http.StatusOK {
			fatalf("creating session: %d %s", status, payload)
		}
	}
}

func main() {
	hyperd := flag.String("hyperd", "hyperd", "path to the hyperd binary")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos suite (injected faults, a mid-query worker kill, a coordinator restart) instead of the plain smoke")
	flag.Parse()
	if *chaos {
		runChaos(*hyperd)
		return
	}
	runSmoke(*hyperd)
}

// runSmoke is the plain happy-path gate: every placement of every golden is
// byte-identical to local, traces stitch end to end, metrics reconcile.
func runSmoke(hyperd string) {
	cport, w1port, w2port := freePort(), freePort(), freePort()
	cbase := fmt.Sprintf("http://127.0.0.1:%d", cport)

	coord := spawn("coordinator", hyperd,
		"-addr", fmt.Sprintf("127.0.0.1:%d", cport),
		"-dist-ttl", "5s", "-quiet")
	defer coord.stop()
	waitHealthy(cbase, 30*time.Second)

	for i, port := range []int{w1port, w2port} {
		w := spawn(fmt.Sprintf("worker%d", i+1), hyperd,
			"-worker",
			"-coordinator", cbase,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-worker-id", fmt.Sprintf("smoke-w%d", i+1),
			"-heartbeat", "500ms", "-quiet")
		defer w.stop()
	}
	waitWorkers(cbase, 2, 30*time.Second)

	createSessions(cbase)

	for _, g := range whatifGoldens {
		run := func(placement string) ([]byte, whatIfResp) {
			var r whatIfResp
			status, payload := post(cbase, "/v1/whatif", map[string]any{
				"session": g.session, "query": g.query, "placement": placement,
			})
			if status != http.StatusOK {
				fatalf("%s (%s): status %d: %s", g.name, placement, status, payload)
			}
			if err := json.Unmarshal(payload, &r); err != nil {
				fatalf("%s (%s): %v", g.name, placement, err)
			}
			return stableBytes(payload, &r.stable), r
		}
		// "fit" first so the cold session cache exercises remote fitting.
		fitBytes, _ := run("fit")
		workersBytes, wresp := run("workers")
		localBytes, _ := run("local")
		if !bytes.Equal(workersBytes, localBytes) {
			fatalf("%s: placement=workers diverges from local:\n  workers: %s\n  local:   %s", g.name, workersBytes, localBytes)
		}
		if !bytes.Equal(fitBytes, localBytes) {
			fatalf("%s: placement=fit diverges from local:\n  fit:   %s\n  local: %s", g.name, fitBytes, localBytes)
		}
		if wresp.Placement != "workers" || wresp.RemoteWorkers < 1 {
			fatalf("%s: distributed run reports placement=%q remote_workers=%d — the workers were not used",
				g.name, wresp.Placement, wresp.RemoteWorkers)
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok (local == workers == fit): %s\n", g.name, localBytes)
	}

	for _, g := range howtoGoldens {
		run := func(placement string) []byte {
			status, payload := post(cbase, "/v1/howto", map[string]any{
				"session": g.session, "query": g.query, "placement": placement,
			})
			if status != http.StatusOK {
				fatalf("%s (%s): status %d: %s", g.name, placement, status, payload)
			}
			var s stableHowTo
			return stableBytes(payload, &s)
		}
		fitBytes := run("fit") // cold cache: fits go through the workers
		localBytes := run("local")
		if !bytes.Equal(fitBytes, localBytes) {
			fatalf("%s: placement=fit diverges from local:\n  fit:   %s\n  local: %s", g.name, fitBytes, localBytes)
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok (local == fit): %s\n", g.name, localBytes)
	}

	// The coordinator must have actually distributed work.
	var stats struct {
		Dist struct {
			RemoteEvals   uint64 `json:"remote_evals"`
			RemoteShards  uint64 `json:"remote_shards"`
			RemoteFits    uint64 `json:"remote_fits"`
			FramesShipped uint64 `json:"frames_shipped"`
			WorkersAlive  int    `json:"workers_alive"`
		} `json:"dist"`
	}
	resp, err := http.Get(cbase + "/v1/stats")
	if err != nil {
		fatalf("stats: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		fatalf("stats: %v", err)
	}
	if stats.Dist.WorkersAlive != 2 || stats.Dist.RemoteEvals == 0 || stats.Dist.RemoteShards == 0 ||
		stats.Dist.RemoteFits == 0 || stats.Dist.FramesShipped == 0 {
		fatalf("coordinator gauges say the distributed path did not run: %+v", stats.Dist)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: gauges: %+v\n", stats.Dist)

	// One traced distributed run must stitch a single cross-process trace.
	checkDistTrace(cbase)

	// All three processes must expose well-formed Prometheus text with their
	// core series, and the worker-side shard counters must reconcile with the
	// coordinator's ledger (exact when nothing was requeued).
	coordSeries := scrapeMetrics("coordinator", cbase)
	requireSeries("coordinator", coordSeries,
		`hyper_requests_total{endpoint="whatif"}`,
		`hyper_request_duration_ms_count{endpoint="whatif"}`,
		`hyper_query_cost_wall_ms_count{endpoint="whatif"}`,
		`hyper_query_cost_tuples_count{endpoint="whatif"}`,
		"hyper_dist_remote_shards_total",
		"hyper_dist_workers_alive",
		"hyper_uptime_seconds",
		"hyper_traces_recorded_total",
		"hyper_plan_cache_hits_total",
		"hyper_plan_cache_misses_total",
		"hyper_plan_cache_evictions_total",
		"hyper_plan_compile_ms_count",
	)
	requireHealthGauges("coordinator", coordSeries)
	// Every coordinator session carries a plan cache, so the queries above
	// must have planned: at least one compile (first shape is a miss).
	if coordSeries["hyper_plan_cache_misses_total"] < 1 || coordSeries["hyper_plan_compile_ms_count"] < 1 {
		fatalf("planner never ran: plan cache misses=%v compiles=%v",
			coordSeries["hyper_plan_cache_misses_total"], coordSeries["hyper_plan_compile_ms_count"])
	}
	workerShards := 0.0
	for i, port := range []int{w1port, w2port} {
		name := fmt.Sprintf("worker%d", i+1)
		ws := scrapeMetrics(name, fmt.Sprintf("http://127.0.0.1:%d", port))
		requireSeries(name, ws,
			"hyper_worker_evals_total",
			"hyper_worker_eval_shards_total",
			"hyper_worker_fits_total",
			"hyper_worker_frames",
		)
		requireHealthGauges(name, ws)
		if ws["hyper_worker_evals_total"] == 0 {
			fatalf("%s served no evals according to its own counters", name)
		}
		workerShards += ws["hyper_worker_eval_shards_total"]
	}
	if requeues := coordSeries["hyper_dist_requeues_total"]; requeues == 0 {
		if remote := coordSeries["hyper_dist_remote_shards_total"]; workerShards != remote {
			fatalf("shard ledgers disagree: workers served %v shards, coordinator recorded %v", workerShards, remote)
		}
	} else {
		fmt.Fprintf(os.Stderr, "distsmoke: %v requeues — skipping exact shard reconciliation\n", requeues)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: metrics ok: workers served %v shards, coordinator ledger matches\n", workerShards)

	// The per-query ledgers must reconcile too: /v1/usage rows that shipped
	// shards across processes carry both sides of the byte and shard counts.
	checkUsageReconciliation(cbase)

	// MVCC: append rows mid-run and assert distributed as-of results stay
	// byte-identical to local, for both the pinned old version and the head.
	checkMVCCAppend(cbase)

	fmt.Println("distsmoke: PASS — distributed evaluation is bit-identical to single-node on toy and german")
}

// checkMVCCAppend grows a session while the workers are live: the pinned
// pre-append version must keep answering with its original bytes on every
// placement (the delta ship may not disturb resident frames), and the new
// head must be byte-identical between local and workers even though the
// workers received only the appended segment, not a fresh snapshot.
func checkMVCCAppend(cbase string) {
	loansCSV := func(lo, hi int) string {
		csv := "Status,Savings,Credit\n"
		for i := lo; i < hi; i++ {
			csv += fmt.Sprintf("%d,%d,%d\n", i%4, (i/2)%3, (i+i/5)%2)
		}
		return csv
	}
	if status, payload := post(cbase, "/v1/sessions", map[string]any{
		"name": "grow",
		"csv": map[string]any{
			"tables": []map[string]any{{"name": "Loans", "data": loansCSV(0, 600)}},
			"model": map[string]any{"edges": [][2]string{
				{"Loans.Status", "Loans.Credit"},
				{"Loans.Savings", "Loans.Credit"},
			}},
		},
		"options": map[string]any{"seed": 7, "shard_rows": 256},
	}); status != http.StatusOK {
		fatalf("mvcc: creating session grow: %d %s", status, payload)
	}
	const query = `USE Loans WHEN Savings = 1 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	run := func(placement string, snapshot int64) []byte {
		body := map[string]any{"query": query, "placement": placement}
		if snapshot != 0 {
			body["snapshot"] = snapshot
		}
		status, payload := post(cbase, "/v1/sessions/grow/whatif", body)
		if status != http.StatusOK {
			fatalf("mvcc: whatif (%s, snapshot %d): status %d: %s", placement, snapshot, status, payload)
		}
		var r whatIfResp
		return stableBytes(payload, &r.stable)
	}
	preLocal := run("local", 0)
	preWorkers := run("workers", 0)
	if !bytes.Equal(preLocal, preWorkers) {
		fatalf("mvcc: pre-append workers diverges from local:\n  workers: %s\n  local:   %s", preWorkers, preLocal)
	}

	var appendResp struct {
		Version      int64 `json:"version"`
		Rows         int   `json:"rows"`
		ShardsFitted int   `json:"shards_fitted"`
		ShardsReused int   `json:"shards_reused"`
	}
	status, payload := post(cbase, "/v1/sessions/grow/rows", map[string]any{
		"tables": []map[string]any{{"name": "Loans", "data": loansCSV(600, 1100)}},
	})
	if status != http.StatusOK {
		fatalf("mvcc: append: %d %s", status, payload)
	}
	if err := json.Unmarshal(payload, &appendResp); err != nil {
		fatalf("mvcc: append response: %v (%s)", err, payload)
	}
	if appendResp.Version != 2 || appendResp.Rows != 1100 {
		fatalf("mvcc: append published %+v, want version 2 with 1100 rows", appendResp)
	}
	// Two creation-sealed shards at target 256 must be reused, never refit.
	if appendResp.ShardsFitted != 3 || appendResp.ShardsReused != 2 {
		fatalf("mvcc: append fitted=%d reused=%d, want 3/2 — history was rescanned", appendResp.ShardsFitted, appendResp.ShardsReused)
	}

	for _, placement := range []string{"local", "workers"} {
		if got := run(placement, 1); !bytes.Equal(got, preLocal) {
			fatalf("mvcc: as-of-1 (%s) diverges from pre-append bytes:\n  got:  %s\n  want: %s", placement, got, preLocal)
		}
	}
	headLocal := run("local", 0)
	headWorkers := run("workers", 0)
	if !bytes.Equal(headLocal, headWorkers) {
		fatalf("mvcc: post-append workers diverges from local:\n  workers: %s\n  local:   %s", headWorkers, headLocal)
	}
	if bytes.Equal(headLocal, preLocal) {
		fatalf("mvcc: append did not change the head result — the as-of check is vacuous")
	}
	fmt.Fprintf(os.Stderr, "distsmoke: mvcc ok (as-of-1 stable, head local == workers, fit 3 / reuse 2)\n")
}

// distStats fetches the coordinator's /v1/stats dist block.
type distStats struct {
	WorkersAlive       int    `json:"workers_alive"`
	WorkersRegistered  int    `json:"workers_registered"`
	WorkersQuarantined int    `json:"workers_quarantined"`
	WorkersLost        uint64 `json:"workers_lost"`
	Requeues           uint64 `json:"requeues"`
	FramesShipped      uint64 `json:"frames_shipped"`
	LocalFallbacks     uint64 `json:"local_fallbacks"`
	Retries            uint64 `json:"retries"`
	RestoredWorkers    uint64 `json:"restored_workers"`
	PersistErrors      uint64 `json:"persist_errors"`
	FaultsInjected     uint64 `json:"faults_injected"`
}

func getDistStats(cbase string) distStats {
	var out struct {
		Dist distStats `json:"dist"`
	}
	resp, err := http.Get(cbase + "/v1/stats")
	if err != nil {
		fatalf("stats: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		fatalf("stats: %v", err)
	}
	return out.Dist
}

// sigkill hard-kills a process (no drain, no deregistration) — the chaos
// suite's stand-in for a coordinator crash.
func (p *proc) sigkill() {
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// stopClean SIGTERMs a process and requires a zero exit status — the
// graceful-drain contract.
func (p *proc) stopClean() {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("%s did not exit cleanly on SIGTERM: %v", p.name, err)
		}
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		fatalf("%s did not exit within 30s of SIGTERM", p.name)
	}
}

// runChaos is the resilience gate: deterministic injected faults (a frame
// ship error, dial delays, a worker killed mid-eval), a circuit-breaker
// quarantine, and a coordinator crash + state-file restart — while every
// answer stays byte-identical to the local baseline and every response
// reports its degradation honestly.
func runChaos(hyperd string) {
	stateDir, err := os.MkdirTemp("", "distsmoke-chaos-")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(stateDir)
	statePath := stateDir + "/dist-state.json"

	cport, w1port, w2port := freePort(), freePort(), freePort()
	cbase := fmt.Sprintf("http://127.0.0.1:%d", cport)
	coordArgs := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", cport),
		"-dist-ttl", "30s",
		"-dist-breaker-failures", "2",
		"-dist-breaker-cooldown", "120s",
		"-dist-state", statePath,
		"-quiet",
	}

	// Life 1 of the coordinator injects a frame-ship error (retried in
	// place) and dial delays (absorbed); worker 2 kills itself on its second
	// eval (after=1), mid-request.
	coord := spawn("coordinator", hyperd, append(coordArgs,
		"-fault", "frame_ship:error:count=1,worker_dial:delay:ms=20:count=8")...)
	defer func() { coord.stop() }()
	waitHealthy(cbase, 30*time.Second)

	w1 := spawn("worker1", hyperd,
		"-worker", "-coordinator", cbase,
		"-addr", fmt.Sprintf("127.0.0.1:%d", w1port),
		"-worker-id", "chaos-w1",
		"-heartbeat", "500ms", "-drain-timeout", "10s", "-quiet")
	defer w1.stop()
	w2 := spawn("worker2", hyperd,
		"-worker", "-coordinator", cbase,
		"-addr", fmt.Sprintf("127.0.0.1:%d", w2port),
		"-worker-id", "chaos-w2",
		"-heartbeat", "500ms", "-quiet",
		"-fault", "eval:kill:after=1")
	defer w2.stop()
	waitWorkers(cbase, 2, 30*time.Second)

	createSessions(cbase)

	// Local baselines for every golden, before any distributed run touches a
	// worker (worker 2's kill budget must not be spent early).
	whatifBase := map[string][]byte{}
	for _, g := range whatifGoldens {
		var r whatIfResp
		status, payload := post(cbase, "/v1/whatif", map[string]any{
			"session": g.session, "query": g.query, "placement": "local",
		})
		if status != http.StatusOK {
			fatalf("%s baseline: status %d: %s", g.name, status, payload)
		}
		whatifBase[g.name] = stableBytes(payload, &r.stable)
	}
	howtoBase := map[string][]byte{}
	for _, g := range howtoGoldens {
		status, payload := post(cbase, "/v1/howto", map[string]any{
			"session": g.session, "query": g.query, "placement": "local",
		})
		if status != http.StatusOK {
			fatalf("%s baseline: status %d: %s", g.name, status, payload)
		}
		var s stableHowTo
		howtoBase[g.name] = stableBytes(payload, &s)
	}

	count := whatifGoldens[0] // german-count drives the failure choreography
	countEval := func(step string) whatIfResp {
		var r whatIfResp
		status, payload := post(cbase, "/v1/whatif", map[string]any{
			"session": count.session, "query": count.query, "placement": "workers",
		})
		if status != http.StatusOK {
			fatalf("%s: status %d: %s", step, status, payload)
		}
		if err := json.Unmarshal(payload, &r); err != nil {
			fatalf("%s: %v", step, err)
		}
		if got := stableBytes(payload, &r.stable); !bytes.Equal(got, whatifBase[count.name]) {
			fatalf("%s diverges from local baseline:\n  chaos: %s\n  local: %s", step, got, whatifBase[count.name])
		}
		return r
	}

	// Query 1: the injected frame-ship error and dial delays are absorbed by
	// the retry policy — full fleet, not degraded.
	r := countEval("chaos query 1 (absorbed faults)")
	if r.Degraded {
		fatalf("query 1 reported degraded (%s); retried faults alone must not degrade", r.DegradedReason)
	}
	if r.RemoteWorkers != 2 {
		fatalf("query 1 used %d workers, want 2", r.RemoteWorkers)
	}
	if st := getDistStats(cbase); st.Retries == 0 {
		fatalf("query 1 stats report no retries despite the injected ship failure: %+v", st)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: chaos query 1 ok — injected faults absorbed, not degraded\n")

	// Query 2: worker 2's kill rule fires mid-eval (os.Exit inside the
	// handler). Shards requeue onto worker 1; the answer is unchanged and the
	// response says degraded=worker_lost.
	r = countEval("chaos query 2 (worker killed mid-eval)")
	if !r.Degraded || r.DegradedReason != "worker_lost" {
		fatalf("query 2 degraded=%v reason=%q, want true/worker_lost", r.Degraded, r.DegradedReason)
	}
	if st := getDistStats(cbase); st.WorkersQuarantined != 0 || st.Requeues == 0 {
		fatalf("query 2 stats: %+v (want 0 quarantined with K=2, >0 requeues)", st)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: chaos query 2 ok — worker death requeued, degraded=worker_lost\n")

	// Query 3: the second consecutive failure (dial refused — the process is
	// gone) trips the breaker: worker 2 is quarantined.
	r = countEval("chaos query 3 (second failure quarantines)")
	if !r.Degraded || r.DegradedReason != "worker_lost" {
		fatalf("query 3 degraded=%v reason=%q, want true/worker_lost", r.Degraded, r.DegradedReason)
	}
	if st := getDistStats(cbase); st.WorkersQuarantined != 1 || st.WorkersLost != 1 {
		fatalf("query 3 stats: %+v (want 1 quarantined, 1 lost)", st)
	}

	// Query 4: the quarantined worker is skipped without a dial.
	r = countEval("chaos query 4 (quarantine skip)")
	if !r.Degraded || r.DegradedReason != "quarantine" {
		fatalf("query 4 degraded=%v reason=%q, want true/quarantine", r.Degraded, r.DegradedReason)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: chaos queries 3-4 ok — breaker opened, quarantine skips the dead worker\n")

	// The resilience metrics must tell the same story.
	cs := scrapeMetrics("coordinator", cbase)
	requireSeries("coordinator", cs,
		"hyper_dist_retries_total",
		"hyper_dist_breaker_state",
		"hyper_dist_workers_restored_total",
		"hyper_server_panics_total",
	)
	if cs["hyper_dist_breaker_state"] != 1 {
		fatalf("hyper_dist_breaker_state = %v, want 1 open circuit", cs["hyper_dist_breaker_state"])
	}
	if cs["hyper_dist_retries_total"] < 1 {
		fatalf("hyper_dist_retries_total = %v, want >= 1", cs["hyper_dist_retries_total"])
	}
	faults := 0.0
	for series, v := range cs {
		if strings.HasPrefix(series, "hyper_fault_injected_total{") {
			faults += v
		}
	}
	if faults < 2 {
		fatalf("coordinator hyper_fault_injected_total sums to %v, want >= 2 (one ship error + dial delays)", faults)
	}

	// Crash the coordinator (SIGKILL: no drain, no goodbye) and restart it on
	// the same port from the same state file, fault-free this time. It must
	// re-adopt the fleet: both workers registered without a Register call,
	// the quarantine still standing.
	fmt.Fprintf(os.Stderr, "distsmoke: SIGKILLing the coordinator and restarting from %s\n", statePath)
	coord.sigkill()
	coord = spawn("coordinator-2", hyperd, coordArgs...)
	waitHealthy(cbase, 30*time.Second)
	st := getDistStats(cbase)
	if st.RestoredWorkers != 2 || st.WorkersRegistered != 2 {
		fatalf("restarted coordinator stats: %+v (want 2 restored, 2 registered)", st)
	}
	if st.WorkersQuarantined != 1 || st.WorkersAlive != 1 {
		fatalf("restarted coordinator stats: %+v (quarantine must survive the restart)", st)
	}

	// Sessions are in-memory; recreate them. The frames they rebuild are
	// content-addressed, so the restored shipped-frame ledger must prevent
	// any re-ship to worker 1.
	createSessions(cbase)
	r = countEval("post-restart query (re-adopted fleet)")
	if !r.Degraded || r.DegradedReason != "quarantine" {
		fatalf("post-restart degraded=%v reason=%q, want true/quarantine", r.Degraded, r.DegradedReason)
	}
	if st := getDistStats(cbase); st.FramesShipped != 0 {
		fatalf("restarted coordinator re-shipped %d frames; the persisted ledger should have prevented all", st.FramesShipped)
	}
	fmt.Fprintf(os.Stderr, "distsmoke: restart ok — fleet re-adopted from state, quarantine intact, zero frames re-shipped\n")

	// Every golden must still match its pre-crash local baseline, distributed
	// over the surviving worker ("workers" for what-if, "fit" for how-to).
	for _, g := range whatifGoldens {
		var r whatIfResp
		status, payload := post(cbase, "/v1/whatif", map[string]any{
			"session": g.session, "query": g.query, "placement": "workers",
		})
		if status != http.StatusOK {
			fatalf("%s (post-restart): status %d: %s", g.name, status, payload)
		}
		if err := json.Unmarshal(payload, &r); err != nil {
			fatalf("%s (post-restart): %v", g.name, err)
		}
		if got := stableBytes(payload, &r.stable); !bytes.Equal(got, whatifBase[g.name]) {
			fatalf("%s (post-restart) diverges from pre-crash local baseline:\n  got:   %s\n  local: %s", g.name, got, whatifBase[g.name])
		}
		if !r.Degraded || r.DegradedReason != "quarantine" {
			fatalf("%s (post-restart) degraded=%v reason=%q, want true/quarantine", g.name, r.Degraded, r.DegradedReason)
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok post-restart (degraded=quarantine, bytes == local)\n", g.name)
	}
	for _, g := range howtoGoldens {
		status, payload := post(cbase, "/v1/howto", map[string]any{
			"session": g.session, "query": g.query, "placement": "fit",
		})
		if status != http.StatusOK {
			fatalf("%s (post-restart): status %d: %s", g.name, status, payload)
		}
		var s stableHowTo
		if got := stableBytes(payload, &s); !bytes.Equal(got, howtoBase[g.name]) {
			fatalf("%s (post-restart) diverges from pre-crash local baseline:\n  got:   %s\n  local: %s", g.name, got, howtoBase[g.name])
		}
		fmt.Fprintf(os.Stderr, "distsmoke: %-14s ok post-restart (fit bytes == local)\n", g.name)
	}

	// The surviving worker drains and exits cleanly on SIGTERM.
	w1.stopClean()
	fmt.Fprintf(os.Stderr, "distsmoke: worker1 drained and exited cleanly on SIGTERM\n")

	fmt.Println("distsmoke: CHAOS PASS — faults injected, worker killed, coordinator restarted; every answer bit-identical, every degradation reported")
}
