package hyper

import (
	"math"
	"strings"
	"testing"

	"hyper/internal/dataset"
)

func germanSession(t *testing.T) (*Session, float64) {
	t.Helper()
	g := dataset.GermanSyn(5000, 7)
	s := NewSession(g.DB, g.Model)
	s.SetOptions(Options{Seed: 7})
	return s, float64(g.Rel().Len())
}

func TestSessionHowToBruteForceAgreesWithIP(t *testing.T) {
	s, _ := germanSession(t)
	src := `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`
	ipRes, err := s.HowTo(src)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := s.HowToBruteForce(src)
	if err != nil {
		t.Fatal(err)
	}
	// Single attribute: the IP and exhaustive search must agree exactly.
	if ipRes.Choices[0].String() != bf.Choices[0].String() {
		t.Errorf("IP chose %s, brute force %s", ipRes.Choices[0], bf.Choices[0])
	}
	if math.Abs(ipRes.Objective-bf.Objective) > 1e-6 {
		t.Errorf("objectives differ: %.4f vs %.4f", ipRes.Objective, bf.Objective)
	}
}

func TestSessionHowToMinimizeCost(t *testing.T) {
	s, n := germanSession(t)
	res, err := s.HowToMinimizeCost(`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE COUNT(Credit = 1)`, 0.65*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective < 0.65*n-1 {
		t.Errorf("objective %.1f misses target %.1f", res.Objective, 0.65*n)
	}
}

func TestSessionHowToLexicographic(t *testing.T) {
	s, _ := germanSession(t)
	res, err := s.HowToLexicographic(
		`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE COUNT(Credit = 1)`,
		`USE German HOWTOUPDATE Status, Savings TOMINIMIZE AVG(POST(Savings))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choices) != 2 {
		t.Errorf("choices = %v", res.Choices)
	}
	if _, err := s.HowToLexicographic(); err == nil {
		t.Error("no objectives should fail")
	}
}

func TestSessionAccessorsAndOptions(t *testing.T) {
	s, _ := germanSession(t)
	if s.DB() == nil || s.Model() == nil {
		t.Error("accessors")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	s.SetOptions(Options{Mode: ModeIndep, SampleSize: 123, Seed: 9, Buckets: 5})
	if got := s.Options(); got.SampleSize != 123 || got.Mode != ModeIndep {
		t.Errorf("options round trip: %+v", got)
	}
	// Nil model session validates trivially and evaluates in NB mode.
	g := dataset.GermanSyn(1000, 9)
	nilModel := NewSession(g.DB, nil)
	if err := nilModel.Validate(); err != nil {
		t.Errorf("nil model validate: %v", err)
	}
	res, err := nilModel.WhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeNB {
		t.Errorf("nil-model evaluation should run in NB mode, got %s", res.Mode)
	}
}

func TestSessionExplain(t *testing.T) {
	s, _ := germanSession(t)
	plan, err := s.Explain(`USE German WHEN Age = 0 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Sex) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"relevant view: 5000 rows", "backdoor set:", "Age", "estimator:", "blocks:"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := s.Explain(`garbage`); err == nil {
		t.Error("bad query should fail")
	}
}

func TestValueConstructorsReexported(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(1.5).AsFloat() != 1.5 ||
		String("x").AsString() != "x" || !Bool(true).AsBool() || !Null.IsNull() {
		t.Error("re-exported constructors misbehave")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	s, _ := germanSession(t)
	for _, call := range []func() error{
		func() error { _, err := s.WhatIf(`garbage`); return err },
		func() error { _, err := s.HowTo(`garbage`); return err },
		func() error { _, err := s.HowToBruteForce(`garbage`); return err },
		func() error { _, err := s.HowToMinimizeCost(`garbage`, 1); return err },
		func() error { _, err := s.Query(`garbage`); return err },
		func() error { _, err := Parse(`garbage`); return err },
	} {
		if err := call(); err == nil || !strings.Contains(err.Error(), "hyperql") {
			t.Errorf("parse error should surface, got %v", err)
		}
	}
	// Type mismatches between WhatIf/HowTo entry points.
	if _, err := s.WhatIf(`USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`); err == nil {
		t.Error("WhatIf on a how-to query should fail")
	}
	if _, err := s.HowTo(`USE German UPDATE(Status) = 3 OUTPUT COUNT(*)`); err == nil {
		t.Error("HowTo on a what-if query should fail")
	}
}
